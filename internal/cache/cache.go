// Package cache implements GLARE's resource cache: discovered remote
// activity types and deployments are "optionally cached locally", and the
// RDM Cache Refresher "updates cached resources if and when they change on
// the source Grid site. Outdated resources are discarded automatically."
//
// Change detection uses the LastUpdateTime (LUT) reference property of the
// source EPR (paper Fig. 6): "each time it changes, cached activity
// deployment resources are revived."
//
// GLARE uses a two-level cache: one instance on every normal Grid site and
// one on each super-peer; both are this type.
package cache

import (
	"sync"
	"time"

	"glare/internal/epr"
	"glare/internal/hlc"
	"glare/internal/simclock"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// Entry is one cached remote resource.
type Entry struct {
	Key     string
	Source  epr.EPR // where the resource lives; carries LastUpdateTime
	Doc     *xmlutil.Node
	Fetched time.Time
}

// Stats counts cache effectiveness for the experiments.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Revived   uint64
	Discarded uint64
	// Stale counts entries served past their TTL through GetStale while
	// the network could not refresh them (degraded resolution).
	Stale uint64
}

// Cache is a keyed resource cache with TTL and LUT-based revival.
type Cache struct {
	mu       sync.Mutex
	clock    simclock.Clock
	ttl      time.Duration
	staleFor time.Duration
	entries  map[string]*Entry
	stats    Stats

	// Telemetry mirrors of the stats counters; nil until Instrument is
	// called (a nil counter is a no-op).
	hits, misses, revived, discarded, staleSrv *telemetry.Counter
}

// DefaultTTL bounds how long an entry may serve without refresh.
const DefaultTTL = 5 * time.Minute

// New creates a cache; ttl <= 0 uses DefaultTTL.
func New(clock simclock.Clock, ttl time.Duration) *Cache {
	if clock == nil {
		clock = simclock.Real
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Cache{clock: clock, ttl: ttl, entries: make(map[string]*Entry)}
}

// Instrument mirrors the cache's effectiveness counters onto telemetry
// instruments so they appear on the site's /metrics exposition. Call
// before the cache is shared across goroutines.
func (c *Cache) Instrument(hits, misses, revived, discarded *telemetry.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.revived, c.discarded = hits, misses, revived, discarded
}

// SetStaleFor retains expired entries for d past their TTL so degraded
// resolution can fall back on them: Get still misses on an expired entry
// (it will not silently serve stale data), but GetStale serves it while
// the source site is unreachable. d <= 0 (the default) disables retention
// and restores eager eviction on expiry.
func (c *Cache) SetStaleFor(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.staleFor = d
}

// InstrumentStale mirrors the stale-served counter onto a telemetry
// instrument. Call before the cache is shared across goroutines.
func (c *Cache) InstrumentStale(stale *telemetry.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.staleSrv = stale
}

// Put stores (or replaces) a cached resource.
func (c *Cache) Put(key string, source epr.EPR, doc *xmlutil.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = &Entry{Key: key, Source: source, Doc: doc, Fetched: c.clock.Now()}
}

// PutIfNewer stores the resource only when no entry exists for key or the
// offered copy orders strictly after the cached one: source LastUpdateTime
// first, origin site name (the "OriginSite" extra reference property) as
// the deterministic tiebreak for equal stamps. It is the anti-entropy
// write path: concurrent syncs against several peers may offer the same
// resource, and every site must converge on the same winner — equal-stamp
// conflicts are real under hybrid logical clocks, whose instants only
// totally order together with the stamping site's name. Reports whether
// the entry was written.
func (c *Cache) PutIfNewer(key string, source epr.EPR, doc *xmlutil.Node) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && !hlc.Newer(
		source.LastUpdateTime, source.Extra["OriginSite"],
		e.Source.LastUpdateTime, e.Source.Extra["OriginSite"]) {
		return false
	}
	c.entries[key] = &Entry{Key: key, Source: source, Doc: doc, Fetched: c.clock.Now()}
	return true
}

// Get returns the cached document for key if present and fresh. Expired
// entries miss; they are evicted immediately unless a stale-retention
// window (SetStaleFor) keeps them reachable through GetStale.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.misses.Inc()
		return nil, false
	}
	if age := c.clock.Now().Sub(e.Fetched); age > c.ttl {
		if c.staleFor <= 0 || age > c.ttl+c.staleFor {
			delete(c.entries, key)
			c.stats.Discarded++
			c.discarded.Inc()
		}
		c.stats.Misses++
		c.misses.Inc()
		return nil, false
	}
	c.stats.Hits++
	c.hits.Inc()
	return e, true
}

// GetStale returns the cached entry even past its TTL, as long as it is
// within the stale-retention window. It is the degraded-resolution path:
// when the source site is unreachable, an outdated answer marked as such
// beats no answer. Fresh entries count as hits; stale ones as Stale.
func (c *Cache) GetStale(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.misses.Inc()
		return nil, false
	}
	age := c.clock.Now().Sub(e.Fetched)
	if age <= c.ttl {
		c.stats.Hits++
		c.hits.Inc()
		return e, true
	}
	if c.staleFor > 0 && age <= c.ttl+c.staleFor {
		c.stats.Stale++
		c.staleSrv.Inc()
		return e, true
	}
	delete(c.entries, key)
	c.stats.Misses++
	c.stats.Discarded++
	c.misses.Inc()
	c.discarded.Inc()
	return nil, false
}

// Peek is Get without statistics or TTL eviction; used by the refresher.
func (c *Cache) Peek(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// Invalidate removes one entry.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		delete(c.entries, key)
		c.stats.Discarded++
		c.discarded.Inc()
	}
}

// Keys returns the currently cached keys (unsorted).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Resolver re-fetches a resource from its source. It returns the fresh EPR
// (with current LastUpdateTime) and document, or an error when the source
// is gone.
type Resolver func(key string, source epr.EPR) (epr.EPR, *xmlutil.Node, error)

// Refresh implements the Cache Refresher pass: for every cached entry whose
// source LastUpdateTime is newer than the cached one, re-fetch ("revive")
// the document; entries whose source has disappeared are discarded. probe
// fetches the source's current LUT cheaply.
func (c *Cache) Refresh(probe func(key string, source epr.EPR) (time.Time, error), resolve Resolver) (revived, discarded int) {
	c.mu.Lock()
	keys := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		keys = append(keys, e)
	}
	c.mu.Unlock()

	for _, e := range keys {
		lut, err := probe(e.Key, e.Source)
		if err != nil {
			c.mu.Lock()
			delete(c.entries, e.Key)
			c.stats.Discarded++
			c.discarded.Inc()
			c.mu.Unlock()
			discarded++
			continue
		}
		if !lut.After(e.Source.LastUpdateTime) {
			continue // unchanged
		}
		freshEPR, doc, err := resolve(e.Key, e.Source)
		if err != nil {
			c.mu.Lock()
			delete(c.entries, e.Key)
			c.stats.Discarded++
			c.discarded.Inc()
			c.mu.Unlock()
			discarded++
			continue
		}
		c.mu.Lock()
		c.entries[e.Key] = &Entry{Key: e.Key, Source: freshEPR, Doc: doc, Fetched: c.clock.Now()}
		c.stats.Revived++
		c.revived.Inc()
		c.mu.Unlock()
		revived++
	}
	return revived, discarded
}

// Clear empties the cache.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*Entry)
}
