package cache

import (
	"fmt"
	"testing"
	"time"

	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/xmlutil"
)

func fixture() (*Cache, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	return New(v, time.Minute), v
}

func src(key string, lut time.Time) epr.EPR {
	e := epr.New("http://remote/wsrf/services/ADR", "ActivityDeploymentKey", key)
	e.LastUpdateTime = lut
	return e
}

func TestPutGet(t *testing.T) {
	c, v := fixture()
	doc := xmlutil.NewNode("ActivityDeployment")
	c.Put("jpovray", src("jpovray", v.Now()), doc)
	e, ok := c.Get("jpovray")
	if !ok || e.Doc != doc {
		t.Fatal("get failed")
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("missing key hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c, v := fixture()
	c.Put("a", src("a", v.Now()), nil)
	v.Advance(2 * time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("stale entry served")
	}
	if c.Stats().Discarded != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	if c.Len() != 0 {
		t.Fatal("entry not evicted")
	}
}

func TestInvalidate(t *testing.T) {
	c, v := fixture()
	c.Put("a", src("a", v.Now()), nil)
	c.Invalidate("a")
	c.Invalidate("a") // idempotent
	if c.Len() != 0 || c.Stats().Discarded != 1 {
		t.Fatalf("len=%d stats=%+v", c.Len(), c.Stats())
	}
}

func TestRefreshRevivesChangedEntries(t *testing.T) {
	c, v := fixture()
	t0 := v.Now()
	c.Put("dep", src("dep", t0), xmlutil.NewNode("Old"))
	v.Advance(10 * time.Second)
	newLUT := v.Now()

	probe := func(key string, source epr.EPR) (time.Time, error) { return newLUT, nil }
	resolve := func(key string, source epr.EPR) (epr.EPR, *xmlutil.Node, error) {
		return src(key, newLUT), xmlutil.NewNode("New"), nil
	}
	revived, discarded := c.Refresh(probe, resolve)
	if revived != 1 || discarded != 0 {
		t.Fatalf("revived=%d discarded=%d", revived, discarded)
	}
	e, ok := c.Get("dep")
	if !ok || e.Doc.Name != "New" {
		t.Fatal("entry not revived")
	}
	if !e.Source.LastUpdateTime.Equal(newLUT) {
		t.Fatal("LUT not refreshed")
	}
	// Second refresh: LUT unchanged, nothing happens.
	revived, discarded = c.Refresh(probe, resolve)
	if revived != 0 || discarded != 0 {
		t.Fatalf("unchanged refresh revived=%d discarded=%d", revived, discarded)
	}
}

func TestRefreshDiscardsDeadSources(t *testing.T) {
	c, v := fixture()
	c.Put("gone", src("gone", v.Now()), nil)
	probe := func(string, epr.EPR) (time.Time, error) {
		return time.Time{}, fmt.Errorf("connection refused")
	}
	_, discarded := c.Refresh(probe, nil)
	if discarded != 1 || c.Len() != 0 {
		t.Fatal("dead source not discarded")
	}
}

func TestRefreshDiscardsWhenResolveFails(t *testing.T) {
	c, v := fixture()
	t0 := v.Now()
	c.Put("x", src("x", t0), nil)
	v.Advance(time.Second)
	probe := func(string, epr.EPR) (time.Time, error) { return v.Now(), nil }
	resolve := func(string, epr.EPR) (epr.EPR, *xmlutil.Node, error) {
		return epr.EPR{}, nil, fmt.Errorf("resource destroyed")
	}
	revived, discarded := c.Refresh(probe, resolve)
	if revived != 0 || discarded != 1 {
		t.Fatalf("revived=%d discarded=%d", revived, discarded)
	}
}

func TestPeekDoesNotCountOrEvict(t *testing.T) {
	c, v := fixture()
	c.Put("a", src("a", v.Now()), nil)
	v.Advance(2 * time.Minute)
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("peek must see stale entries")
	}
	if c.Stats().Hits != 0 && c.Stats().Misses != 0 {
		t.Fatal("peek must not count")
	}
}

func TestKeysAndClear(t *testing.T) {
	c, v := fixture()
	c.Put("a", src("a", v.Now()), nil)
	c.Put("b", src("b", v.Now()), nil)
	if len(c.Keys()) != 2 {
		t.Fatal("keys wrong")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestDefaultTTL(t *testing.T) {
	c := New(nil, 0)
	if c.ttl != DefaultTTL {
		t.Fatalf("ttl = %v", c.ttl)
	}
}
