package cache

import (
	"testing"
	"testing/quick"
	"time"

	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/xmlutil"
)

// cacheOp encodes one random cache action.
type cacheOp struct {
	Kind    uint8 // 0 put, 1 get, 2 invalidate, 3 advance clock
	Key     uint8
	Seconds uint8
}

// Property: against a model map with the same TTL semantics, Get always
// agrees on presence, Len never disagrees after expiry-free sequences, and
// statistics only ever grow.
func TestQuickCacheAgreesWithModel(t *testing.T) {
	const ttl = time.Minute
	f := func(ops []cacheOp) bool {
		clock := simclock.NewVirtual(time.Time{})
		c := New(clock, ttl)
		type entry struct{ stored time.Time }
		model := map[string]entry{}
		var prev Stats
		for _, o := range ops {
			key := "k" + string(rune('a'+o.Key%6))
			switch o.Kind % 4 {
			case 0:
				src := epr.New("http://s/wsrf/services/X", "K", key)
				src.LastUpdateTime = clock.Now()
				c.Put(key, src, xmlutil.NewNode("V"))
				model[key] = entry{stored: clock.Now()}
			case 1:
				_, got := c.Get(key)
				m, ok := model[key]
				want := ok && clock.Now().Sub(m.stored) <= ttl
				if got != want {
					return false
				}
				if !want {
					delete(model, key) // Get evicts stale entries
				}
			case 2:
				c.Invalidate(key)
				delete(model, key)
			case 3:
				clock.Advance(time.Duration(o.Seconds%45) * time.Second)
			}
			st := c.Stats()
			if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Discarded < prev.Discarded {
				return false // counters must be monotone
			}
			prev = st
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
