package cache

import (
	"testing"
	"time"

	"glare/internal/xmlutil"
)

func TestStaleRetentionWindow(t *testing.T) {
	c, v := fixture() // TTL one minute
	c.SetStaleFor(10 * time.Minute)
	doc := xmlutil.NewNode("ActivityDeployment")
	c.Put("d", src("d", v.Now()), doc)

	// Fresh: both paths hit.
	if _, ok := c.Get("d"); !ok {
		t.Fatal("fresh Get missed")
	}
	if _, ok := c.GetStale("d"); !ok {
		t.Fatal("fresh GetStale missed")
	}

	// Expired but within the window: Get misses without evicting,
	// GetStale serves.
	v.Advance(5 * time.Minute)
	if _, ok := c.Get("d"); ok {
		t.Fatal("expired entry served by Get")
	}
	if c.Len() != 1 {
		t.Fatal("expired entry evicted despite stale retention")
	}
	e, ok := c.GetStale("d")
	if !ok || e.Doc != doc {
		t.Fatal("stale entry not served by GetStale")
	}
	st := c.Stats()
	if st.Stale != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Discarded != 0 {
		t.Fatalf("retained entry counted as discarded: %+v", st)
	}

	// Past the window: GetStale evicts and misses.
	v.Advance(10 * time.Minute)
	if _, ok := c.GetStale("d"); ok {
		t.Fatal("entry older than the revival window served")
	}
	if c.Len() != 0 {
		t.Fatal("entry not evicted past the window")
	}
	st = c.Stats()
	if st.Discarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetStaleWithoutRetentionBehavesLikeGet(t *testing.T) {
	c, v := fixture() // staleFor defaults to 0: eager eviction
	c.Put("d", src("d", v.Now()), xmlutil.NewNode("X"))
	v.Advance(2 * time.Minute)
	if _, ok := c.GetStale("d"); ok {
		t.Fatal("stale served with retention disabled")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not evicted with retention disabled")
	}
}
