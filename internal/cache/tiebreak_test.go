package cache

import (
	"testing"
	"time"

	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/xmlutil"
)

func offered(origin string, lut time.Time) (epr.EPR, *xmlutil.Node) {
	src := epr.New("http://"+origin+"/atr", "Name", "k")
	src.LastUpdateTime = lut
	src.Extra = map[string]string{"OriginSite": origin}
	doc := xmlutil.NewNode("Doc")
	doc.SetAttr("from", origin)
	return src, doc
}

// TestPutIfNewerEqualStampConvergesOnSiteName pins the anti-entropy
// tiebreak: two copies carrying the SAME LastUpdateTime from different
// origin sites must converge on one deterministic winner — the greater
// site name — regardless of the order a syncing site learns about them.
// Without the tiebreak, sites syncing against different peers first would
// disagree forever while both copies look "equally fresh".
func TestPutIfNewerEqualStampConvergesOnSiteName(t *testing.T) {
	clock := simclock.NewVirtual(time.Time{})
	stamp := time.Unix(500, 0).UTC()
	srcA, docA := offered("agrid01.uibk.ac.at", stamp)
	srcB, docB := offered("agrid02.uibk.ac.at", stamp)

	// Order 1: learn A's copy, then B's. B (greater name) must replace A.
	c1 := New(clock, time.Hour)
	if !c1.PutIfNewer("type:k", srcA, docA) {
		t.Fatal("first put refused")
	}
	if !c1.PutIfNewer("type:k", srcB, docB) {
		t.Fatal("equal-stamp copy from greater-named origin refused")
	}

	// Order 2: learn B's copy, then A's. A (lesser name) must lose.
	c2 := New(clock, time.Hour)
	if !c2.PutIfNewer("type:k", srcB, docB) {
		t.Fatal("first put refused")
	}
	if c2.PutIfNewer("type:k", srcA, docA) {
		t.Fatal("equal-stamp copy from lesser-named origin accepted")
	}

	e1, _ := c1.Peek("type:k")
	e2, _ := c2.Peek("type:k")
	if got1, got2 := e1.Doc.AttrOr("from", ""), e2.Doc.AttrOr("from", ""); got1 != got2 {
		t.Fatalf("learn orders diverged: %q vs %q", got1, got2)
	} else if got1 != "agrid02.uibk.ac.at" {
		t.Fatalf("winner = %q, want the greater origin name", got1)
	}
}

// TestPutIfNewerEqualStampSameOriginOverwrites: a re-offer of the same
// (stamp, origin) pair is a re-delivery of the same version, not a
// conflict; refusing it keeps anti-entropy idempotent.
func TestPutIfNewerEqualStampSameOriginRefused(t *testing.T) {
	clock := simclock.NewVirtual(time.Time{})
	stamp := time.Unix(500, 0).UTC()
	src, doc := offered("agrid01.uibk.ac.at", stamp)
	c := New(clock, time.Hour)
	if !c.PutIfNewer("type:k", src, doc) {
		t.Fatal("first put refused")
	}
	if c.PutIfNewer("type:k", src, doc.Clone()) {
		t.Fatal("identical (stamp, origin) re-offer was treated as newer")
	}
}
