// Package xmlutil implements the property-document tree shared by the
// WSRF resource layer, the XPath engine and the MDS index.
//
// A WS-Resource exposes its state as a resource property document: an XML
// element tree. GLARE's registries aggregate many such documents and query
// them either by name (hash table) or by XPath. This package provides the
// mutable tree, XML (de)serialization, and deep-copy/equality helpers.
package xmlutil

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Attr is a single XML attribute. Attributes keep insertion order so that
// serialization is deterministic.
type Attr struct {
	Name  string
	Value string
}

// Node is one element of a property document.
type Node struct {
	Name     string
	Attrs    []Attr
	Children []*Node
	Text     string // character data directly inside this element
}

// NewNode creates an element with the given name and optional text.
func NewNode(name string, text ...string) *Node {
	n := &Node{Name: name}
	if len(text) > 0 {
		n.Text = strings.Join(text, "")
	}
	return n
}

// Elem creates a child element with the given name and text, appends it and
// returns the child (for chaining further construction).
func (n *Node) Elem(name string, text ...string) *Node {
	c := NewNode(name, text...)
	n.Children = append(n.Children, c)
	return c
}

// Add appends existing child nodes and returns the receiver.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// SetAttr sets (or replaces) an attribute and returns the receiver.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute or a default.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// First returns the first direct child with the given name, or nil.
func (n *Node) First(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// All returns every direct child with the given name.
func (n *Node) All(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// ChildText returns the text of the first child with the given name, or "".
func (n *Node) ChildText(name string) string {
	if c := n.First(name); c != nil {
		return strings.TrimSpace(c.Text)
	}
	return ""
}

// Remove deletes the first direct child equal (by pointer) to target and
// reports whether it was found.
func (n *Node) Remove(target *Node) bool {
	for i, c := range n.Children {
		if c == target {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// Walk visits n and all descendants in document order. Returning false from
// fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Descendants returns every descendant (excluding n) with the given name;
// "*" matches all element names.
func (n *Node) Descendants(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		c.Walk(func(d *Node) bool {
			if name == "*" || d.Name == name {
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	c := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Equal reports deep structural equality, ignoring attribute order.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Name != o.Name || strings.TrimSpace(n.Text) != strings.TrimSpace(o.Text) ||
		len(n.Attrs) != len(o.Attrs) || len(n.Children) != len(o.Children) {
		return false
	}
	am, bm := map[string]string{}, map[string]string{}
	for _, a := range n.Attrs {
		am[a.Name] = a.Value
	}
	for _, a := range o.Attrs {
		bm[a.Name] = a.Value
	}
	for k, v := range am {
		if bm[k] != v {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// String serializes the subtree as compact XML.
func (n *Node) String() string {
	var b bytes.Buffer
	n.write(&b, -1, 0)
	return b.String()
}

// Indent serializes the subtree as indented XML.
func (n *Node) Indent() string {
	var b bytes.Buffer
	n.write(&b, 0, 0)
	return b.String()
}

func (n *Node) write(b *bytes.Buffer, indent, depth int) {
	pad := ""
	if indent >= 0 {
		pad = strings.Repeat("  ", depth)
		b.WriteString(pad)
	}
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, " %s=\"%s\"", a.Name, escapeAttr(a.Value))
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>")
		if indent >= 0 {
			b.WriteByte('\n')
		}
		return
	}
	b.WriteByte('>')
	if n.Text != "" {
		b.WriteString(escapeText(n.Text))
	}
	if len(n.Children) > 0 {
		if indent >= 0 {
			b.WriteByte('\n')
		}
		for _, c := range n.Children {
			c.write(b, indent, depth+1)
		}
		if indent >= 0 {
			b.WriteString(pad)
		}
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
	if indent >= 0 {
		b.WriteByte('\n')
	}
}

func escapeText(s string) string {
	var b bytes.Buffer
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

func escapeAttr(s string) string {
	return strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;",
	).Replace(s)
}

// Parse reads one XML document (or fragment with a single root) into a tree.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlutil: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewNode(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.SetAttr(a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlutil: multiple root elements")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlutil: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				top.Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlutil: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlutil: unterminated document")
	}
	trimWhitespace(root)
	return root, nil
}

// ParseString parses XML from a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParse parses XML and panics on error. For use with literals in tests
// and examples.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// trimWhitespace removes pure-formatting whitespace text from elements that
// have children (mixed content is preserved only when non-blank).
func trimWhitespace(n *Node) {
	if strings.TrimSpace(n.Text) == "" {
		n.Text = ""
	} else {
		n.Text = strings.TrimSpace(n.Text)
	}
	for _, c := range n.Children {
		trimWhitespace(c)
	}
}

// SortChildrenByName orders direct children by element name then text; used
// where deterministic aggregation output is needed.
func (n *Node) SortChildrenByName() {
	sort.SliceStable(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Text < b.Text
	})
}
