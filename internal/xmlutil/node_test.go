package xmlutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildAndQueryTree(t *testing.T) {
	n := NewNode("Root")
	n.SetAttr("version", "1")
	child := n.Elem("Child", "hello")
	child.SetAttr("id", "c1")
	n.Elem("Child", "world")
	n.Elem("Other")

	if got := len(n.All("Child")); got != 2 {
		t.Fatalf("All(Child) = %d, want 2", got)
	}
	if got := n.First("Child").Text; got != "hello" {
		t.Fatalf("First(Child).Text = %q", got)
	}
	if got := n.ChildText("Child"); got != "hello" {
		t.Fatalf("ChildText = %q", got)
	}
	if v, ok := n.First("Child").Attr("id"); !ok || v != "c1" {
		t.Fatalf("Attr(id) = %q,%v", v, ok)
	}
	if n.First("Missing") != nil {
		t.Fatal("First(Missing) should be nil")
	}
	if got := n.AttrOr("version", "x"); got != "1" {
		t.Fatalf("AttrOr = %q", got)
	}
	if got := n.AttrOr("nope", "x"); got != "x" {
		t.Fatalf("AttrOr default = %q", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewNode("A")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	if len(n.Attrs) != 1 {
		t.Fatalf("attrs = %d, want 1", len(n.Attrs))
	}
	if v, _ := n.Attr("k"); v != "2" {
		t.Fatalf("k = %q, want 2", v)
	}
}

func TestRemove(t *testing.T) {
	n := NewNode("A")
	c1 := n.Elem("B")
	c2 := n.Elem("B")
	if !n.Remove(c1) {
		t.Fatal("Remove(c1) failed")
	}
	if n.Remove(c1) {
		t.Fatal("Remove(c1) twice should fail")
	}
	if len(n.Children) != 1 || n.Children[0] != c2 {
		t.Fatal("wrong child remains")
	}
}

func TestRoundTrip(t *testing.T) {
	src := `<Build baseDir="/tmp/papers/" defaultTask="Deploy" name="Povray">
  <Step name="Init" task="mkdir-p" timeout="10">
    <Env name="POVRAY_HOME" value="$DEPLOYMENT_DIR/povray/"/>
    <Property name="argument" value="$POVRAY_HOME"/>
  </Step>
  <Step name="Download" depends="Init" task="globus-url-copy">
    <Property name="source" value="http://www.povray.org/ft...povlinux-3.6.tgz"/>
  </Step>
</Build>`
	n, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n.Name != "Build" || n.AttrOr("name", "") != "Povray" {
		t.Fatalf("bad root: %s", n.Name)
	}
	steps := n.All("Step")
	if len(steps) != 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[1].AttrOr("depends", "") != "Init" {
		t.Fatal("depends lost")
	}
	// Serialize and reparse; must be structurally equal.
	again, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !n.Equal(again) {
		t.Fatalf("round trip not equal:\n%s\n%s", n.Indent(), again.Indent())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a><b></a>",
		"<a/><b/>",
		"no xml at all<",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestEscaping(t *testing.T) {
	n := NewNode("A", "a < b & c > d")
	n.SetAttr("attr", `x<y>"z"&w`)
	out, err := ParseString(n.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v\nxml: %s", err, n.String())
	}
	if out.Text != "a < b & c > d" {
		t.Fatalf("text = %q", out.Text)
	}
	if v, _ := out.Attr("attr"); v != `x<y>"z"&w` {
		t.Fatalf("attr = %q", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := MustParse(`<a x="1"><b>t</b></a>`)
	c := n.Clone()
	c.First("b").Text = "changed"
	c.SetAttr("x", "2")
	if n.First("b").Text != "t" {
		t.Fatal("clone shares child text")
	}
	if v, _ := n.Attr("x"); v != "1" {
		t.Fatal("clone shares attrs")
	}
}

func TestDescendantsAndWalk(t *testing.T) {
	n := MustParse(`<r><a><b/><b/></a><b/></r>`)
	if got := len(n.Descendants("b")); got != 3 {
		t.Fatalf("Descendants(b) = %d", got)
	}
	if got := len(n.Descendants("*")); got != 4 {
		t.Fatalf("Descendants(*) = %d", got)
	}
	// Walk pruning: stop below <a>.
	count := 0
	n.Walk(func(x *Node) bool {
		count++
		return x.Name != "a"
	})
	if count != 3 { // r, a, b(top-level)
		t.Fatalf("pruned walk visited %d", count)
	}
}

func TestEqualIgnoresAttrOrder(t *testing.T) {
	a := MustParse(`<x p="1" q="2"/>`)
	b := MustParse(`<x q="2" p="1"/>`)
	if !a.Equal(b) {
		t.Fatal("attr order should not matter")
	}
	c := MustParse(`<x p="1" q="3"/>`)
	if a.Equal(c) {
		t.Fatal("different attr values must differ")
	}
}

// Property: any tree built from sanitized names/texts survives a
// serialize→parse round trip structurally intact.
func TestQuickRoundTrip(t *testing.T) {
	sanitize := func(s string, forName bool) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
				b.WriteRune(r)
			case r >= '0' && r <= '9' && !forName:
				b.WriteRune(r)
			}
		}
		out := b.String()
		if forName && out == "" {
			return "elem"
		}
		return out
	}
	f := func(names [][3]string) bool {
		root := NewNode("root")
		cur := root
		for _, trip := range names {
			c := cur.Elem(sanitize(trip[0], true), sanitize(trip[1], false))
			c.SetAttr("a"+sanitize(trip[2], true), sanitize(trip[2], false))
			cur = c
		}
		again, err := ParseString(root.String())
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		return root.Equal(again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortChildrenByName(t *testing.T) {
	n := MustParse(`<r><c>2</c><a/><c>1</c><b/></r>`)
	n.SortChildrenByName()
	var got []string
	for _, c := range n.Children {
		got = append(got, c.Name+c.Text)
	}
	want := []string{"a", "b", "c1", "c2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
