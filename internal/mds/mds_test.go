package mds

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"glare/internal/epr"
	"glare/internal/gsi"
	"glare/internal/simclock"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

func entry(i int) (epr.EPR, *xmlutil.Node) {
	key := fmt.Sprintf("type%03d", i)
	e := epr.New("http://s/wsrf/services/ATR", "ActivityTypeKey", key)
	doc := xmlutil.NewNode("ActivityTypeEntry")
	doc.SetAttr("name", key)
	doc.SetAttr("type", "Imaging")
	return e, doc
}

func TestRegisterAndQuery(t *testing.T) {
	x := New("idx", DefaultIndex, nil)
	for i := 0; i < 20; i++ {
		x.Register(entry(i))
	}
	if x.Len() != 20 {
		t.Fatalf("len = %d", x.Len())
	}
	res, err := x.QueryString(`//ActivityTypeEntry[@name='type007']`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("query = %d", len(res.Nodes))
	}
	if _, err := x.QueryString(`///bad`); err == nil {
		t.Fatal("bad xpath must error")
	}
}

func TestUnregister(t *testing.T) {
	x := New("idx", DefaultIndex, nil)
	e, doc := entry(1)
	x.Register(e, doc)
	if !x.Unregister(e.Key) {
		t.Fatal("unregister failed")
	}
	if x.Unregister(e.Key) {
		t.Fatal("double unregister must be false")
	}
	if x.Len() != 0 {
		t.Fatal("entry survived")
	}
}

func TestHierarchicalAggregation(t *testing.T) {
	community := New("community", CommunityIndex, nil)
	local := New("local", DefaultIndex, nil)
	local.AddUpstream(community)
	e, doc := entry(5)
	local.Register(e, doc)
	if community.Len() != 1 {
		t.Fatal("registration did not flow upstream")
	}
	local.Unregister(e.Key)
	if community.Len() != 0 {
		t.Fatal("unregistration did not flow upstream")
	}
	// Self/nil upstream is ignored.
	local.AddUpstream(local)
	local.AddUpstream(nil)
	local.Register(e, doc)
	if local.Len() != 1 {
		t.Fatal("self upstream broke registration")
	}
}

func TestMembers(t *testing.T) {
	x := New("idx", DefaultIndex, nil)
	for i := 0; i < 3; i++ {
		x.Register(entry(i))
	}
	m := x.Members()
	if len(m) != 3 || m[0] != "type000" {
		t.Fatalf("members = %v", m)
	}
}

func TestKindString(t *testing.T) {
	if DefaultIndex.String() != "DefaultIndex" || CommunityIndex.String() != "CommunityIndex" {
		t.Fatal("kind names wrong")
	}
}

func TestOverloadCollapse(t *testing.T) {
	x := New("idx", DefaultIndex, nil)
	x.SetCollapse(CollapseConfig{Resources: 10, Clients: 2})
	// Register well past the resource threshold; a large aggregated
	// document also makes each XPath scan slow enough that concurrent
	// queries genuinely overlap.
	for i := 0; i < 400; i++ {
		x.Register(entry(i))
	}
	// Saturate in-flight queries beyond the client threshold.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 20; q++ {
				if _, err := x.QueryString(`//ActivityTypeEntry[@name='type003']`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	sawCollapse := false
	for err := range errs {
		if err != nil {
			sawCollapse = true
		}
	}
	if !sawCollapse && !x.Wedged() {
		t.Fatal("index should have collapsed under load")
	}
	// Once wedged it refuses everything until reset.
	if x.Wedged() {
		if _, err := x.QueryString(`//x`); err == nil {
			t.Fatal("wedged index must refuse queries")
		}
		x.Reset()
		if _, err := x.QueryString(`//ActivityTypeEntry`); err != nil {
			t.Fatalf("reset index must answer: %v", err)
		}
	}
}

func TestNoCollapseBelowThresholds(t *testing.T) {
	x := New("idx", DefaultIndex, nil)
	x.SetCollapse(ObservedCollapse)
	for i := 0; i < 50; i++ { // well below 130
		x.Register(entry(i))
	}
	var wg sync.WaitGroup
	for c := 0; c < 30; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 10; q++ {
				if _, err := x.QueryString(`//ActivityTypeEntry[@name='type001']`); err != nil {
					t.Errorf("unexpected collapse: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if x.Wedged() {
		t.Fatal("collapsed below thresholds")
	}
}

func TestMountOverTransport(t *testing.T) {
	for _, secure := range []bool{false, true} {
		t.Run(fmt.Sprintf("secure=%v", secure), func(t *testing.T) {
			x := New("idx", DefaultIndex, nil)
			srv := transport.NewServer()
			x.Mount(srv)
			var clientTLS = (*gsi.Authority)(nil)
			if secure {
				ca, err := gsi.NewAuthority("test-ca")
				if err != nil {
					t.Fatal(err)
				}
				conf, err := ca.ServerConfig("127.0.0.1")
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.Start("127.0.0.1:0", conf); err != nil {
					t.Fatal(err)
				}
				clientTLS = ca
			} else {
				if err := srv.Start("127.0.0.1:0", nil); err != nil {
					t.Fatal(err)
				}
			}
			defer srv.Close()

			var cli *transport.Client
			if clientTLS != nil {
				cli = transport.NewClient(clientTLS.ClientConfig())
			} else {
				cli = transport.NewClient(nil)
			}
			url := srv.ServiceURL(ServiceName)

			// Register an entry remotely.
			e, doc := entry(9)
			body := xmlutil.NewNode("Entry")
			body.Add(e.ToXML("MemberEPR"))
			body.Add(doc)
			if _, err := cli.Call(url, "Register", body); err != nil {
				t.Fatalf("Register: %v", err)
			}
			// Query it back.
			q := xmlutil.NewNode("XPath", `//ActivityTypeEntry[@name='type009']`)
			res, err := cli.Call(url, "Query", q)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if len(res.All("ActivityTypeEntry")) != 1 {
				t.Fatalf("remote query result: %s", res)
			}
			// Members.
			m, err := cli.Call(url, "Members", nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.All("Member")) != 1 {
				t.Fatalf("members: %s", m)
			}
			// Faults propagate.
			if _, err := cli.Call(url, "Register", nil); err == nil || !transport.IsFault(err) {
				t.Fatalf("expected fault, got %v", err)
			}
			if _, err := cli.Call(url, "NoSuchOp", nil); err == nil {
				t.Fatal("unknown op must fault")
			}
		})
	}
}

func TestRefreshEvery(t *testing.T) {
	v := simclock.Real
	_ = v
	x := New("idx", DefaultIndex, nil)
	home := newTestHome()
	stop := make(chan struct{})
	x.RefreshEvery(10*time.Millisecond, home, stop)
	deadline := time.After(2 * time.Second)
	for x.Len() == 0 {
		select {
		case <-deadline:
			t.Fatal("refresh never registered entries")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
}
