// Package mds implements the WS-MDS (GT4 Index Service) baseline GLARE is
// compared against in Figs. 10 and 11.
//
// The Index Service aggregates resource property documents through the same
// WSRF service-group framework the GLARE registries use — the paper notes
// "the underlying aggregation framework ... is same for both GT4 Index
// service and GLARE registries. Therefore it is logical to make this
// comparison." The difference is the query path: the Index answers every
// query by evaluating XPath over the whole aggregated document (a linear
// scan), whereas the GLARE registries answer named lookups from a hash
// table. The Index also exhibits the overload collapse the paper reports:
// it "stops responding when we register more than 130 activity type
// resources in it and number of concurrent clients exceeds 10".
package mds

import (
	"fmt"
	"sync"
	"time"

	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
	"glare/internal/xpath"
)

// Kind distinguishes the per-site Default Index from the VO-level
// Community Index ("In Globus Toolkit 4, terms Default Index service and
// Community Index service are used for local and root WS-MDS services").
type Kind int

const (
	DefaultIndex Kind = iota
	CommunityIndex
)

// String renders the kind name.
func (k Kind) String() string {
	if k == CommunityIndex {
		return "CommunityIndex"
	}
	return "DefaultIndex"
}

// CollapseConfig models the observed overload failure of the Index
// Service. When more than Resources entries are registered AND more than
// Clients queries are in flight, further queries hang until the load drops
// (paper §4, discussion of Fig. 11). Zero values disable collapse.
type CollapseConfig struct {
	Resources int
	Clients   int
}

// ObservedCollapse matches the paper's reported thresholds.
var ObservedCollapse = CollapseConfig{Resources: 130, Clients: 10}

// Index is one Index Service instance.
type Index struct {
	kind  Kind
	name  string
	group *wsrf.ServiceGroup
	clock simclock.Clock

	collapse CollapseConfig

	mu        sync.Mutex
	inflight  int
	wedged    bool
	upstreams []*Index // hierarchical aggregation: children register here

	// serviceDelay models the container's per-request processing time
	// (SOAP parsing, DOM handling in the real GT4 stack). It is a
	// blocking delay inside Query, so concurrent requests genuinely
	// overlap regardless of GOMAXPROCS — which is what lets the overload
	// collapse reproduce on small simulator hosts.
	serviceDelay time.Duration

	queries uint64
}

// New creates an index service.
func New(name string, kind Kind, clock simclock.Clock) *Index {
	if clock == nil {
		clock = simclock.Real
	}
	return &Index{
		kind:  kind,
		name:  name,
		group: wsrf.NewServiceGroup(name, clock),
		clock: clock,
	}
}

// SetCollapse configures (or disables, with zero) overload collapse.
func (x *Index) SetCollapse(c CollapseConfig) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.collapse = c
}

// SetServiceDelay sets the modeled per-request container processing time.
func (x *Index) SetServiceDelay(d time.Duration) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.serviceDelay = d
}

// Kind returns the index kind.
func (x *Index) Kind() Kind { return x.kind }

// Name returns the service name.
func (x *Index) Name() string { return x.name }

// Register aggregates a resource property document under a key.
func (x *Index) Register(e epr.EPR, content *xmlutil.Node) {
	x.group.AddEntry(e, content)
	x.mu.Lock()
	ups := append([]*Index(nil), x.upstreams...)
	x.mu.Unlock()
	for _, up := range ups {
		up.Register(e, content)
	}
}

// Unregister removes an aggregated entry.
func (x *Index) Unregister(key string) bool {
	ok := x.group.RemoveEntry(key)
	x.mu.Lock()
	ups := append([]*Index(nil), x.upstreams...)
	x.mu.Unlock()
	for _, up := range ups {
		up.Unregister(key)
	}
	return ok
}

// AddUpstream links a parent index; registrations flow upward, forming the
// GT4 hierarchical aggregation used to discover Grid sites.
func (x *Index) AddUpstream(parent *Index) {
	if parent == nil || parent == x {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.upstreams = append(x.upstreams, parent)
}

// Len reports the number of aggregated entries.
func (x *Index) Len() int { return x.group.Len() }

// Query evaluates an XPath expression over the aggregated document. This
// is the Index Service's ONLY query mechanism: every call pays the full
// document materialization and scan.
func (x *Index) Query(expr *xpath.Expr) (xpath.Result, error) {
	x.mu.Lock()
	if x.wedged {
		x.mu.Unlock()
		return xpath.Result{}, fmt.Errorf("mds: %s: index service not responding", x.name)
	}
	x.inflight++
	if x.collapse.Resources > 0 && x.group.Len() > x.collapse.Resources &&
		x.inflight > x.collapse.Clients {
		x.wedged = true
		x.inflight--
		x.mu.Unlock()
		return xpath.Result{}, fmt.Errorf("mds: %s: index service not responding", x.name)
	}
	x.queries++
	delay := x.serviceDelay
	x.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	res := x.group.Query(expr)

	x.mu.Lock()
	x.inflight--
	x.mu.Unlock()
	return res, nil
}

// QueryString compiles and evaluates an XPath source string.
func (x *Index) QueryString(src string) (xpath.Result, error) {
	expr, err := xpath.Compile(src)
	if err != nil {
		return xpath.Result{}, err
	}
	return x.Query(expr)
}

// Wedged reports whether the index has collapsed.
func (x *Index) Wedged() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.wedged
}

// Reset clears the wedged state (an administrator restart).
func (x *Index) Reset() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.wedged = false
	x.inflight = 0
}

// Queries returns the number of queries answered.
func (x *Index) Queries() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.queries
}

// Members returns the keys of aggregated entries (used by the GLARE Index
// Monitor to learn community strength).
func (x *Index) Members() []string {
	doc := x.group.Document()
	var out []string
	for _, e := range doc.All("Entry") {
		if k, ok := e.Attr("key"); ok {
			out = append(out, k)
		}
	}
	return out
}

// ServiceName is the transport name Index Services mount under.
const ServiceName = "IndexService"

// Mount exposes the index over a transport server with operations:
//
//	Register(<Entry key="..."><MemberEPR>…</MemberEPR><content…/></Entry>)
//	Query(<XPath>expr</XPath>) -> <Results><…/>…</Results>
//	Members() -> <Members><Member>key</Member>…</Members>
func (x *Index) Mount(srv *transport.Server) {
	srv.RegisterService(ServiceName, map[string]transport.Handler{
		"Register": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("Register: missing entry")
			}
			member := body.First("MemberEPR")
			if member == nil {
				return nil, fmt.Errorf("Register: missing MemberEPR")
			}
			e, err := epr.FromXML(member, "")
			if err != nil {
				return nil, err
			}
			var content *xmlutil.Node
			for _, c := range body.Children {
				if c.Name != "MemberEPR" {
					content = c.Clone()
					break
				}
			}
			x.Register(e, content)
			return xmlutil.NewNode("Registered"), nil
		},
		"Query": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if body == nil {
				return nil, fmt.Errorf("Query: missing XPath")
			}
			res, err := x.QueryString(body.Text)
			if err != nil {
				return nil, err
			}
			out := xmlutil.NewNode("Results")
			for _, n := range res.Nodes {
				out.Add(n.Clone())
			}
			for _, s := range res.Strings {
				out.Elem("Value", s)
			}
			return out, nil
		},
		"Members": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			out := xmlutil.NewNode("Members")
			for _, m := range x.Members() {
				out.Elem("Member", m)
			}
			return out, nil
		},
	})
}

// RefreshEvery launches a goroutine re-registering entries from src into
// the index every interval until stop is closed; mirrors GT4's periodic
// upstream registration renewal.
func (x *Index) RefreshEvery(interval time.Duration, src *wsrf.Home, stop <-chan struct{}) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for _, r := range src.All() {
					x.Register(src.EPR(r.Key()), r.Document())
				}
			}
		}
	}()
}
