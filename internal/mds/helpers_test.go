package mds

import (
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

func newTestHome() *wsrf.Home {
	h := wsrf.NewHome("http://s/wsrf/services/ATR", "ActivityTypeKey", nil)
	doc := xmlutil.NewNode("ActivityTypeEntry")
	doc.SetAttr("name", "seed")
	if _, err := h.Create("seed", doc); err != nil {
		panic(err)
	}
	return h
}
