package deployfile

import (
	"fmt"
	"testing"
	"testing/quick"
)

// randomDAGBuild constructs a build whose step i may depend on any subset
// of steps j < i, encoded by the bitmask slice.
func randomDAGBuild(masks []uint8) *Build {
	n := len(masks)
	if n == 0 {
		n = 1
		masks = []uint8{0}
	}
	if n > 8 {
		n = 8
		masks = masks[:8]
	}
	b := &Build{Name: "quick"}
	for i := 0; i < n; i++ {
		st := Step{Name: fmt.Sprintf("s%d", i), Task: "echo"}
		for j := 0; j < i; j++ {
			if masks[i]&(1<<j) != 0 {
				st.Depends = append(st.Depends, fmt.Sprintf("s%d", j))
			}
		}
		b.Steps = append(b.Steps, st)
	}
	return b
}

// Property: Order is a permutation of the steps in which every dependency
// precedes its dependent.
func TestQuickOrderIsValidTopologicalSort(t *testing.T) {
	f := func(masks []uint8) bool {
		b := randomDAGBuild(masks)
		order, err := b.Order()
		if err != nil {
			return false // construction guarantees acyclicity
		}
		if len(order) != len(b.Steps) {
			return false
		}
		pos := map[string]int{}
		for i, st := range order {
			if _, dup := pos[st.Name]; dup {
				return false
			}
			pos[st.Name] = i
		}
		for _, st := range b.Steps {
			for _, dep := range st.Depends {
				if pos[dep] >= pos[st.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Order is deterministic — repeated calls agree.
func TestQuickOrderDeterministic(t *testing.T) {
	f := func(masks []uint8) bool {
		b := randomDAGBuild(masks)
		o1, err1 := b.Order()
		o2, err2 := b.Order()
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		for i := range o1 {
			if o1[i].Name != o2[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Resolve substitutes every $VAR it knows and leaves the
// command line free of known variable references.
func TestQuickResolveEliminatesKnownVars(t *testing.T) {
	f := func(val string) bool {
		if len(val) > 64 {
			val = val[:64]
		}
		// Values containing '$' would themselves look like references.
		clean := make([]rune, 0, len(val))
		for _, r := range val {
			if r != '$' && r != ' ' && r != '\t' && r != '\n' {
				clean = append(clean, r)
			}
		}
		v := string(clean)
		b := &Build{Name: "q", Steps: []Step{{
			Name: "a", Task: "echo",
			Envs:  []KV{{Name: "X", Value: v}},
			Props: []KV{{Name: "argument", Value: "$X/end"}},
		}}}
		cmds, err := b.Resolve(nil)
		if err != nil || len(cmds) != 1 {
			return false
		}
		want := "echo " + v + "/end"
		return cmds[0].Cmdline == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
