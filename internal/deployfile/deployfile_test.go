package deployfile

import (
	"strings"
	"testing"
	"time"
)

// povrayBuild mirrors the deploy-file of paper Fig. 9.
const povrayBuild = `
<Build baseDir="/tmp/papers/" defaultTask="Deploy" name="Povray">
  <Step name="Init" task="mkdir-p" baseDir="$DEPLOYMENT_DIR" timeout="10">
    <Env name="POVRAY_HOME" value="$DEPLOYMENT_DIR/povray/"/>
    <Env name="POVRAY_DIR" value="/tmp/povray/"/>
    <Property name="argument" value="$POVRAY_HOME"/>
    <Property name="argument" value="$POVRAY_DIR"/>
  </Step>
  <Step name="Download" depends="Init" task="$GLOBUS_LOCATION/bin/globus-url-copy"
        baseDir="$POVRAY_DIR" timeout="20">
    <Property name="source" value="http://www.povray.org/ftp/povlinux-3.6.tgz"/>
    <Property name="destination" value="file:///$POVRAY_DIR/povray.tgz"/>
    <Property name="md5sum" value="abc123"/>
  </Step>
  <Step name="Expand" depends="Download" task="tar xvfz" baseDir="$POVRAY_DIR" timeout="10">
    <Property name="argument" value="$POVRAY_DIR/povray.tgz"/>
  </Step>
  <Step name="Configure" depends="Expand" task="./configure"
        baseDir="$POVRAY_DIR/povray-3.6.1" timeout="60">
    <Property name="argument" value="--prefix=$POVRAY_HOME"/>
    <Interact expect="Accept POV-Ray license" send="y"/>
    <Interact expect="User type" send="personal"/>
    <Interact expect="Install path" send=""/>
  </Step>
  <Step name="Build" depends="Configure" task="make"
        baseDir="$POVRAY_DIR/povray-3.6.1" timeout="200"/>
  <Step name="Deploy" depends="Build" task="make"
        baseDir="$POVRAY_DIR/povray-3.6.1" timeout="60">
    <Property name="argument" value="install"/>
  </Step>
</Build>`

func baseEnv() map[string]string {
	return map[string]string{
		"DEPLOYMENT_DIR":  "/opt/glare/deployments",
		"GLOBUS_LOCATION": "/opt/globus",
	}
}

func TestParseFig9(t *testing.T) {
	b, err := ParseString(povrayBuild)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "Povray" || b.DefaultTask != "Deploy" || len(b.Steps) != 6 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Steps[1].Timeout != 20*time.Second {
		t.Fatalf("timeout = %v", b.Steps[1].Timeout)
	}
	if got := b.Steps[0].Arguments(); len(got) != 2 {
		t.Fatalf("arguments = %v", got)
	}
	if b.Steps[1].Property("md5sum") != "abc123" {
		t.Fatal("md5sum property lost")
	}
	if len(b.Steps[3].Dialog) != 3 {
		t.Fatalf("dialog = %v", b.Steps[3].Dialog)
	}
}

func TestOrderRespectsDependencies(t *testing.T) {
	b, _ := ParseString(povrayBuild)
	steps, err := b.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range steps {
		pos[s.Name] = i
	}
	deps := [][2]string{
		{"Init", "Download"}, {"Download", "Expand"}, {"Expand", "Configure"},
		{"Configure", "Build"}, {"Build", "Deploy"},
	}
	for _, d := range deps {
		if pos[d[0]] >= pos[d[1]] {
			t.Fatalf("%s must precede %s: %v", d[0], d[1], pos)
		}
	}
}

func TestOrderDetectsCycle(t *testing.T) {
	src := `<Build name="c"><Step name="a" depends="b" task="x"/><Step name="b" depends="a" task="y"/></Build>`
	b, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Order(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not build root":  `<NotBuild/>`,
		"missing name":    `<Build><Step name="a" task="x"/></Build>`,
		"no steps":        `<Build name="b"/>`,
		"step no name":    `<Build name="b"><Step task="x"/></Build>`,
		"step no task":    `<Build name="b"><Step name="a"/></Build>`,
		"duplicate step":  `<Build name="b"><Step name="a" task="x"/><Step name="a" task="y"/></Build>`,
		"unknown depends": `<Build name="b"><Step name="a" task="x" depends="zz"/></Build>`,
		"bad timeout":     `<Build name="b"><Step name="a" task="x" timeout="-3"/></Build>`,
	}
	for label, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected parse error", label)
		}
	}
}

func TestResolveSubstitutesEnv(t *testing.T) {
	b, _ := ParseString(povrayBuild)
	cmds, err := b.Resolve(baseEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 6 {
		t.Fatalf("cmds = %d", len(cmds))
	}
	byName := map[string]Command{}
	for _, c := range cmds {
		byName[c.Step.Name] = c
	}
	init := byName["Init"]
	if init.Cmdline != "mkdir-p /opt/glare/deployments/povray/ /tmp/povray/" {
		t.Fatalf("init cmd = %q", init.Cmdline)
	}
	if init.BaseDir != "/opt/glare/deployments" {
		t.Fatalf("init basedir = %q", init.BaseDir)
	}
	dl := byName["Download"]
	if !strings.HasPrefix(dl.Cmdline, "/opt/globus/bin/globus-url-copy http://www.povray.org") {
		t.Fatalf("download cmd = %q", dl.Cmdline)
	}
	if !strings.Contains(dl.Cmdline, "file:////tmp/povray//povray.tgz") &&
		!strings.Contains(dl.Cmdline, "file:///tmp/povray") {
		t.Fatalf("destination not substituted: %q", dl.Cmdline)
	}
	cfg := byName["Configure"]
	if !strings.Contains(cfg.Cmdline, "--prefix=/opt/glare/deployments/povray/") {
		t.Fatalf("configure cmd = %q", cfg.Cmdline)
	}
	if len(cfg.Dialog) != 3 || cfg.Dialog[0].Send != "y" {
		t.Fatalf("dialog = %v", cfg.Dialog)
	}
	// Env accumulates across steps.
	if byName["Deploy"].Env["POVRAY_HOME"] != "/opt/glare/deployments/povray/" {
		t.Fatalf("env = %v", byName["Deploy"].Env)
	}
}

func TestResolveEnvOrderWithinStep(t *testing.T) {
	src := `<Build name="x">
	  <Step name="a" task="echo">
	    <Env name="A" value="1"/>
	    <Env name="B" value="$A/2"/>
	    <Property name="argument" value="$B"/>
	  </Step>
	</Build>`
	b, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	cmds, err := b.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmds[0].Cmdline != "echo 1/2" {
		t.Fatalf("cmdline = %q", cmds[0].Cmdline)
	}
}

func TestExpandBraces(t *testing.T) {
	got := expand("a${X}b$Yc${missing}", func(k string) string {
		switch k {
		case "X":
			return "1"
		case "Yc":
			return "2"
		}
		return ""
	})
	if got != "a1b2" {
		t.Fatalf("expand = %q", got)
	}
}

func TestMD5OfStep(t *testing.T) {
	b, _ := ParseString(povrayBuild)
	steps, _ := b.Order()
	for _, s := range steps {
		if s.Name == "Download" {
			if MD5OfStep(s) != "abc123" {
				t.Fatalf("md5 = %q", MD5OfStep(s))
			}
			return
		}
	}
	t.Fatal("Download step not found")
}

func TestAbsentTimeoutDefaultsToCap(t *testing.T) {
	old := DefaultStepTimeout
	DefaultStepTimeout = 5 * time.Second
	defer func() { DefaultStepTimeout = old }()

	b, err := ParseString(`<Build name="b"><Step name="a" task="x"/></Build>`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Steps[0].Timeout != 5*time.Second {
		t.Fatalf("absent timeout = %v, want the configured cap", b.Steps[0].Timeout)
	}

	// Builds synthesized in code bypass Parse; Resolve applies the cap.
	synth := &Build{Name: "s", Steps: []Step{{Name: "a", Task: "echo"}}}
	cmds, err := synth.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmds[0].Timeout != 5*time.Second {
		t.Fatalf("resolved timeout = %v, want the configured cap", cmds[0].Timeout)
	}

	// A declared timeout is never overridden.
	b, err = ParseString(`<Build name="b"><Step name="a" task="x" timeout="30"/></Build>`)
	if err != nil {
		t.Fatal(err)
	}
	if b.Steps[0].Timeout != 30*time.Second {
		t.Fatalf("declared timeout = %v", b.Steps[0].Timeout)
	}
}

func TestChecksumOfStepPrefersSHA256(t *testing.T) {
	md5Only := &Step{Props: []KV{{Name: "md5sum", Value: "abc123"}}}
	if algo, sum := ChecksumOfStep(md5Only); algo != "md5" || sum != "abc123" {
		t.Fatalf("md5-only step = %q/%q", algo, sum)
	}
	both := &Step{Props: []KV{
		{Name: "md5sum", Value: "abc123"},
		{Name: "sha256sum", Value: "def456"},
	}}
	if algo, sum := ChecksumOfStep(both); algo != "sha256" || sum != "def456" {
		t.Fatalf("dual-sum step = %q/%q, want sha256 preferred", algo, sum)
	}
	none := &Step{}
	if algo, sum := ChecksumOfStep(none); algo != "" || sum != "" {
		t.Fatalf("sumless step = %q/%q", algo, sum)
	}
}
