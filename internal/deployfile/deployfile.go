// Package deployfile implements the deploy-file format of paper Fig. 9: an
// ant-like XML build description whose dependency-ordered steps perform an
// automatic installation on a target Grid site.
//
// A deploy-file looks like:
//
//	<Build baseDir="/tmp/papers/" defaultTask="Deploy" name="Povray">
//	  <Step name="Init" task="mkdir-p" baseDir="$DEPLOYMENT_DIR" timeout="10">
//	    <Env name="POVRAY_HOME" value="$DEPLOYMENT_DIR/povray/"/>
//	    <Property name="argument" value="$POVRAY_HOME"/>
//	  </Step>
//	  <Step name="Download" depends="Init" task="$GLOBUS_LOCATION/bin/globus-url-copy" ...>
//	    <Property name="source" value="http://..."/>
//	    <Property name="destination" value="file:///$POVRAY_DIR/povray.tgz"/>
//	    <Property name="md5sum" value="..."/>
//	  </Step>
//	  <Step name="Configure" depends="Expand" task="./configure" ...>
//	    <Interact expect="Accept POV-Ray license" send="y"/>
//	  </Step>
//	</Build>
//
// Steps declare dependencies by name; execution is in topological order.
// Environment entries accumulate in declaration order and are substituted
// into task strings and property values, together with the RDM service's
// default variables (DEPLOYMENT_DIR, USER_HOME, GLOBUS_SCRATCH_DIR,
// GLOBUS_LOCATION).
package deployfile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"glare/internal/xmlutil"
)

// KV is one ordered name/value pair.
type KV struct {
	Name  string
	Value string
}

// Interaction is one send/expect pattern scripted by the activity provider.
type Interaction struct {
	Expect string
	Send   string
}

// Step is one build step.
type Step struct {
	Name    string
	Depends []string
	Task    string
	BaseDir string
	Timeout time.Duration
	Envs    []KV
	Props   []KV
	Dialog  []Interaction
}

// Property returns the first property with the given name ("" if absent).
func (s *Step) Property(name string) string {
	for _, p := range s.Props {
		if p.Name == name {
			return p.Value
		}
	}
	return ""
}

// Arguments returns every property named "argument", in order.
func (s *Step) Arguments() []string {
	var out []string
	for _, p := range s.Props {
		if p.Name == "argument" {
			out = append(out, p.Value)
		}
	}
	return out
}

// Build is a parsed deploy-file.
type Build struct {
	Name        string
	BaseDir     string
	DefaultTask string
	Steps       []Step
}

// DefaultStepTimeout bounds steps whose deploy-file declares no timeout
// attribute. Historically an absent timeout meant unbounded, which let a
// hung installer wedge a build worker forever; now every step gets this
// cap unless the deploy-file says otherwise. Process-wide, configurable.
var DefaultStepTimeout = 2 * time.Minute

// Parse reads a deploy-file from its XML tree.
func Parse(root *xmlutil.Node) (*Build, error) {
	if root == nil || root.Name != "Build" {
		return nil, fmt.Errorf("deployfile: root element must be <Build>")
	}
	b := &Build{
		Name:        root.AttrOr("name", ""),
		BaseDir:     root.AttrOr("baseDir", ""),
		DefaultTask: root.AttrOr("defaultTask", ""),
	}
	if b.Name == "" {
		return nil, fmt.Errorf("deployfile: <Build> missing name attribute")
	}
	names := map[string]bool{}
	for _, sn := range root.All("Step") {
		st := Step{
			Name:    sn.AttrOr("name", ""),
			Task:    sn.AttrOr("task", ""),
			BaseDir: sn.AttrOr("baseDir", b.BaseDir),
		}
		if st.Name == "" {
			return nil, fmt.Errorf("deployfile: step missing name")
		}
		if names[st.Name] {
			return nil, fmt.Errorf("deployfile: duplicate step %q", st.Name)
		}
		names[st.Name] = true
		if st.Task == "" {
			return nil, fmt.Errorf("deployfile: step %q missing task", st.Name)
		}
		if dep := sn.AttrOr("depends", ""); dep != "" {
			for _, d := range strings.Split(dep, ",") {
				if d = strings.TrimSpace(d); d != "" {
					st.Depends = append(st.Depends, d)
				}
			}
		}
		if t := sn.AttrOr("timeout", ""); t != "" {
			secs, err := strconv.Atoi(t)
			if err != nil || secs < 0 {
				return nil, fmt.Errorf("deployfile: step %q: bad timeout %q", st.Name, t)
			}
			st.Timeout = time.Duration(secs) * time.Second
		}
		if st.Timeout <= 0 {
			st.Timeout = DefaultStepTimeout
		}
		for _, c := range sn.Children {
			switch c.Name {
			case "Env":
				st.Envs = append(st.Envs, KV{c.AttrOr("name", ""), c.AttrOr("value", "")})
			case "Property":
				st.Props = append(st.Props, KV{c.AttrOr("name", ""), c.AttrOr("value", "")})
			case "Interact":
				st.Dialog = append(st.Dialog, Interaction{
					Expect: c.AttrOr("expect", ""),
					Send:   c.AttrOr("send", ""),
				})
			}
		}
		b.Steps = append(b.Steps, st)
	}
	if len(b.Steps) == 0 {
		return nil, fmt.Errorf("deployfile: build %q has no steps", b.Name)
	}
	for _, st := range b.Steps {
		for _, d := range st.Depends {
			if !names[d] {
				return nil, fmt.Errorf("deployfile: step %q depends on unknown step %q", st.Name, d)
			}
		}
	}
	return b, nil
}

// ParseString parses a deploy-file from XML text.
func ParseString(s string) (*Build, error) {
	n, err := xmlutil.ParseString(s)
	if err != nil {
		return nil, fmt.Errorf("deployfile: %w", err)
	}
	return Parse(n)
}

// Order returns the steps in a deterministic topological order (Kahn's
// algorithm, ties broken by declaration order). It fails on cycles.
func (b *Build) Order() ([]*Step, error) {
	index := make(map[string]int, len(b.Steps))
	indeg := make([]int, len(b.Steps))
	succ := make([][]int, len(b.Steps))
	for i := range b.Steps {
		index[b.Steps[i].Name] = i
	}
	for i := range b.Steps {
		for _, d := range b.Steps[i].Depends {
			j := index[d]
			succ[j] = append(succ[j], i)
			indeg[i]++
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	var out []*Step
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		out = append(out, &b.Steps[i])
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(out) != len(b.Steps) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, b.Steps[i].Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("deployfile: dependency cycle among steps %v", stuck)
	}
	return out, nil
}

// Command is one fully resolved step ready for execution.
type Command struct {
	Step    *Step
	Cmdline string
	BaseDir string
	Env     map[string]string
	Timeout time.Duration
	Dialog  []Interaction
}

// Resolve flattens the build into executable commands: topological order,
// environment accumulation and $VAR substitution against base (typically
// the RDM default environment).
func (b *Build) Resolve(base map[string]string) ([]Command, error) {
	steps, err := b.Order()
	if err != nil {
		return nil, err
	}
	env := make(map[string]string, len(base)+8)
	for k, v := range base {
		env[k] = v
	}
	lookup := func(k string) string { return env[k] }
	var out []Command
	for _, st := range steps {
		for _, kv := range st.Envs {
			env[kv.Name] = expand(kv.Value, lookup)
		}
		cmd := Command{
			Step:    st,
			BaseDir: expand(st.BaseDir, lookup),
			Timeout: st.Timeout,
			Dialog:  st.Dialog,
		}
		// Builds synthesized in code (not via Parse) may leave Timeout
		// zero; cap those here too so no resolved step is unbounded.
		if cmd.Timeout <= 0 {
			cmd.Timeout = DefaultStepTimeout
		}
		task := expand(st.Task, lookup)
		var args []string
		if src := st.Property("source"); src != "" {
			args = append(args, expand(src, lookup))
			if dst := st.Property("destination"); dst != "" {
				args = append(args, expand(dst, lookup))
			}
		}
		for _, a := range st.Arguments() {
			args = append(args, expand(a, lookup))
		}
		cmd.Cmdline = strings.TrimSpace(task + " " + strings.Join(args, " "))
		cmd.Env = make(map[string]string, len(env))
		for k, v := range env {
			cmd.Env[k] = v
		}
		out = append(out, cmd)
	}
	return out, nil
}

// ChecksumOfStep returns the declared download checksum of a transfer
// step: the sha256sum property when present, else md5sum. The algo names
// the algorithm ("sha256" or "md5"); both are empty when the step declares
// no checksum.
func ChecksumOfStep(s *Step) (algo, sum string) {
	if v := s.Property("sha256sum"); v != "" {
		return "sha256", v
	}
	if v := s.Property("md5sum"); v != "" {
		return "md5", v
	}
	return "", ""
}

// MD5OfStep returns the md5sum property for download verification.
//
// Deprecated: use ChecksumOfStep, which also honors sha256sum.
func MD5OfStep(s *Step) string { return s.Property("md5sum") }

func expand(s string, lookup func(string) string) string {
	var bld strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '$' {
			bld.WriteByte(c)
			i++
			continue
		}
		i++
		if i < len(s) && s[i] == '{' {
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				bld.WriteString("${")
				i++
				continue
			}
			bld.WriteString(lookup(s[i+1 : i+end]))
			i += end + 1
			continue
		}
		j := i
		for j < len(s) && (s[j] == '_' ||
			s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' ||
			s[j] >= '0' && s[j] <= '9') {
			j++
		}
		if j == i {
			bld.WriteByte('$')
			continue
		}
		bld.WriteString(lookup(s[i:j]))
		i = j
	}
	return bld.String()
}
