package store

import (
	"fmt"
	"testing"
	"time"
)

func benchRecord(i int) Record {
	return put(RegADR, fmt.Sprintf("deployment-%04d", i%512),
		"<Properties><ActivityDeployment name=\"jpovray\" type=\"JPOVray\"/></Properties>",
		time.Time{})
}

// BenchmarkStoreAppendNoSync measures the raw journaling path: frame
// encode + write + in-memory fold, no durability barrier.
func BenchmarkStoreAppendNoSync(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAppendInterval is the default-policy append path.
func BenchmarkStoreAppendInterval(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncInterval, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAppendAlways pays one fsync per record — the paper-grade
// durability ceiling.
func BenchmarkStoreAppendAlways(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncAlways, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReplay measures recovery of a 2048-record WAL — the cost a
// site pays at boot.
func BenchmarkStoreReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2048; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		re.Close()
	}
}

// BenchmarkStoreSnapshot measures one compaction of 512 live records.
func BenchmarkStoreSnapshot(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 512; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
