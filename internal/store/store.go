// Package store is the durable registry store: an append-only,
// CRC32-framed write-ahead log with segment rotation, periodic compacting
// snapshots, a configurable fsync policy, and corruption-tolerant crash
// recovery.
//
// GLARE's registries are stateful WS-Resources whose LastUpdateTime drives
// cache revival and anti-entropy, yet without this package every
// registration, deployment EPR and lease lives only in memory — a glared
// restart silently erases the site and forces the grid to rediscover it.
// The store journals every mutation of the ATR, ADR and lease service;
// on restart the site replays the journal and comes back with the exact
// registry state (documents, LastUpdateTimes, termination times, unexpired
// leases) it crashed with, so no re-registration traffic is needed.
//
// Recovery never fails the boot on a damaged log: scanning truncates at
// the first torn or bad-checksum record and the longest valid prefix
// becomes the state, mirroring how production write-ahead logs (and the
// EU DataGrid replica catalogs GLARE's registries descend from) survive
// crashes mid-write.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"glare/internal/lease"
	"glare/internal/rrd"
	"glare/internal/simclock"
	"glare/internal/telemetry"
	"glare/internal/xmlutil"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval batches fsyncs: an append syncs only when
	// Options.FsyncInterval has elapsed since the last sync. The default —
	// bounded loss window, near-FsyncNever throughput.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: no acknowledged mutation is
	// ever lost, at the cost of one fsync per record.
	FsyncAlways
	// FsyncNever leaves flushing to the OS; intended for tests and
	// throwaway grids.
	FsyncNever
)

// String renders the policy name (the glared -fsync flag values).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	}
	return "interval"
}

// ParseFsyncPolicy maps a flag value onto a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncInterval, fmt.Errorf("store: unknown fsync policy %q (want always|interval|never)", s)
}

// ErrCrashed is returned by every operation after the crash hook fired:
// the store behaves as if its process died mid-append, and only a fresh
// Open on the same directory (recovery) brings the state back.
var ErrCrashed = errors.New("store: crashed (simulated)")

// Defaults.
const (
	DefaultSegmentMaxBytes = 1 << 20
	DefaultSnapshotEvery   = 1024
	DefaultFsyncInterval   = 100 * time.Millisecond
)

// Options configures a store.
type Options struct {
	// Dir is the per-site data directory; created if missing.
	Dir string
	// Fsync is the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval bounds the loss window under FsyncInterval policy
	// (default DefaultFsyncInterval).
	FsyncInterval time.Duration
	// SegmentMaxBytes rotates the active WAL segment past this size
	// (default DefaultSegmentMaxBytes).
	SegmentMaxBytes int64
	// SnapshotEvery takes a compacting snapshot after that many appended
	// records (default DefaultSnapshotEvery; negative disables automatic
	// snapshots).
	SnapshotEvery int
	// Clock drives snapshot-age accounting and interval fsync pacing;
	// nil means the wall clock.
	Clock simclock.Clock
	// AppendHook, when set, intercepts the physical write of each framed
	// record: it returns how many bytes of the frame to actually write and
	// whether to crash the store afterwards (ErrCrashed from then on).
	// The faultinject package provides a deterministic implementation; it
	// exists to prove recovery against torn mid-append writes under -race.
	AppendHook func(frame []byte) (keep int, crash bool)
}

// Status is a point-in-time summary of a store, the payload of
// `glarectl store status`.
type Status struct {
	Dir             string
	LastSeq         uint64
	Segments        int
	WALBytes        int64
	LiveRecords     int
	SnapshotSeq     uint64
	SnapshotRecords int
	HasSnapshot     bool
	SnapshotAge     time.Duration
	ReplayDuration  time.Duration
	ReplayRecords   int
	TruncatedBytes  int64
	Appended        uint64
	Err             string
}

// Store is one site's durable registry store.
type Store struct {
	mu    sync.Mutex
	opts  Options
	clock simclock.Clock

	state *State
	seq   uint64

	seg      *os.File
	segIndex uint64
	segBytes int64
	segCount int

	sinceSnap int
	snapSeq   uint64
	snapCount int
	snapAt    time.Time
	hasSnap   bool

	lastSync time.Time
	dirty    bool
	crashed  bool
	err      error

	appended       uint64
	replayDur      time.Duration
	replayRecords  int
	truncatedTotal int64

	// Telemetry; nil (no-op) until SetTelemetry.
	appendsC, fsyncsC, truncBytesC, snapshotsC, appendErrsC *telemetry.Counter
	segG, snapAgeG, replayMsG, liveG                        *telemetry.Gauge
}

// Open opens (or creates) the store at opts.Dir and runs crash recovery:
// the newest intact snapshot is loaded, WAL segments are replayed on top,
// and the first torn or bad-checksum record truncates the log — the boot
// never fails on a damaged tail, it recovers the longest valid prefix and
// re-opens appendable.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if opts.Clock == nil {
		opts.Clock = simclock.Real
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opts:     opts,
		clock:    opts.Clock,
		state:    newState(),
		lastSync: opts.Clock.Now(),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover rebuilds state from disk and leaves the store appendable.
func (s *Store) recover() error {
	start := time.Now()
	segments, snapshots, err := listDir(s.opts.Dir)
	if err != nil {
		return err
	}

	// Newest intact snapshot wins; torn or corrupt ones are skipped (they
	// can only exist if the crash hit mid-snapshot, in which case the WAL
	// still holds everything the snapshot was compacting).
	for i := len(snapshots) - 1; i >= 0; i-- {
		st, count, ok := loadSnapshot(filepath.Join(s.opts.Dir, snapshots[i]))
		if !ok {
			continue
		}
		s.state = st
		s.snapSeq = snapshotSeq(snapshots[i])
		s.snapCount = count
		s.seq = s.snapSeq
		s.hasSnap = true
		s.snapAt = s.clock.Now()
		break
	}

	// Replay segments in order, folding records newer than the snapshot.
	// A tear truncates its segment and voids everything after it: bytes
	// past a torn frame have no defined order.
	truncatedAt := -1
	for i, name := range segments {
		path := filepath.Join(s.opts.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		res := scanFrames(data)
		for _, rec := range res.records {
			if rec.Seq <= s.snapSeq || rec.Op == opSnapSeal {
				continue
			}
			s.state.apply(rec)
			if rec.Seq > s.seq {
				s.seq = rec.Seq
			}
			s.replayRecords++
		}
		if res.torn {
			s.truncatedTotal += int64(len(data)) - res.good
			if err := truncateFile(path, res.good); err != nil {
				return err
			}
			truncatedAt = i
			break
		}
	}
	if truncatedAt >= 0 && truncatedAt+1 < len(segments) {
		for _, name := range segments[truncatedAt+1:] {
			fi, err := os.Stat(filepath.Join(s.opts.Dir, name))
			if err == nil {
				s.truncatedTotal += fi.Size()
			}
		}
		removeFiles(s.opts.Dir, segments[truncatedAt+1:])
		segments = segments[:truncatedAt+1]
	}

	// Re-open the last segment for appending, or start a fresh one.
	if len(segments) > 0 {
		last := segments[len(segments)-1]
		s.segIndex = segmentIndex(last)
		f, err := os.OpenFile(filepath.Join(s.opts.Dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		s.seg, s.segBytes, s.segCount = f, fi.Size(), len(segments)
	} else {
		if err := s.openSegment(1); err != nil {
			return err
		}
		s.segCount = 1
	}
	s.replayDur = time.Since(start)
	return nil
}

// openSegment creates and activates segment index.
func (s *Store) openSegment(index uint64) error {
	f, err := os.OpenFile(filepath.Join(s.opts.Dir, segmentName(index)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s.seg, s.segIndex, s.segBytes = f, index, 0
	return nil
}

// SetTelemetry binds the store's glare_store_* series to a site's
// telemetry registry. Call during site assembly.
func (s *Store) SetTelemetry(tel *telemetry.Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendsC = tel.Counter("glare_store_appends_total")
	s.fsyncsC = tel.Counter("glare_store_fsyncs_total")
	s.truncBytesC = tel.Counter("glare_store_truncated_bytes_total")
	s.snapshotsC = tel.Counter("glare_store_snapshots_total")
	s.appendErrsC = tel.Counter("glare_store_append_errors_total")
	s.segG = tel.Gauge("glare_store_segments")
	s.snapAgeG = tel.Gauge("glare_store_snapshot_age_seconds")
	s.replayMsG = tel.Gauge("glare_store_replay_ms")
	s.liveG = tel.Gauge("glare_store_live_records")
	// Recovery ran before instrumentation existed; backfill its outcome.
	s.replayMsG.Set(s.replayDur.Milliseconds())
	s.truncBytesC.Add(uint64(s.truncatedTotal))
	s.segG.Set(int64(s.segCount))
	s.liveG.Set(int64(s.state.liveRecords()))
}

// Append journals one record: it is assigned the next sequence number,
// framed, appended to the active segment, fsynced per policy, and folded
// into the in-memory state. Automatic compaction runs when SnapshotEvery
// records have accumulated since the last snapshot.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.err != nil {
		return s.err
	}
	s.seq++
	rec.Seq = s.seq
	payload, err := rec.encode()
	if err != nil {
		s.seq--
		return s.fail(err)
	}
	frame := encodeFrame(payload)
	if s.opts.AppendHook != nil {
		if keep, crash := s.opts.AppendHook(frame); crash {
			if keep > len(frame) {
				keep = len(frame)
			}
			_, _ = s.seg.Write(frame[:keep])
			s.crashed = true
			return ErrCrashed
		}
	}
	if _, err := s.seg.Write(frame); err != nil {
		return s.fail(err)
	}
	s.segBytes += int64(len(frame))
	s.dirty = true
	s.state.apply(rec)
	s.appended++
	s.sinceSnap++
	s.appendsC.Inc()
	s.liveG.Set(int64(s.state.liveRecords()))
	if err := s.maybeSyncLocked(); err != nil {
		return s.fail(err)
	}
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			return s.fail(err)
		}
	} else if s.segBytes >= s.opts.SegmentMaxBytes {
		if err := s.rotateLocked(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// fail records a sticky write error: the store stops accepting appends so
// a half-written journal is never extended past the damage.
func (s *Store) fail(err error) error {
	s.err = err
	s.appendErrsC.Inc()
	return err
}

// maybeSyncLocked applies the fsync policy to the just-appended record.
func (s *Store) maybeSyncLocked() error {
	switch s.opts.Fsync {
	case FsyncAlways:
		return s.syncLocked()
	case FsyncInterval:
		now := s.clock.Now()
		if now.Sub(s.lastSync) >= s.opts.FsyncInterval {
			return s.syncLocked()
		}
	}
	return nil
}

func (s *Store) syncLocked() error {
	if !s.dirty {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	s.dirty = false
	s.lastSync = s.clock.Now()
	s.fsyncsC.Inc()
	return nil
}

// Sync forces the active segment to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	return s.syncLocked()
}

// rotateLocked seals the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	if err := s.openSegment(s.segIndex + 1); err != nil {
		return err
	}
	s.segCount++
	s.segG.Set(int64(s.segCount))
	syncDir(s.opts.Dir)
	return nil
}

// Snapshot compacts the journal now: the live state is written to a new
// snapshot file (temp-file + rename, sealed by a trailer record) and every
// WAL segment it covers is deleted.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	if s.err != nil {
		return s.err
	}
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	if err := writeSnapshot(s.opts.Dir, s.seq, s.state); err != nil {
		return err
	}
	// The snapshot covers everything appended so far, so the entire WAL is
	// compacted away and a fresh segment starts the next epoch.
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	segments, snapshots, err := listDir(s.opts.Dir)
	if err != nil {
		return err
	}
	removeFiles(s.opts.Dir, segments)
	var stale []string
	for _, name := range snapshots {
		if snapshotSeq(name) < s.seq {
			stale = append(stale, name)
		}
	}
	removeFiles(s.opts.Dir, stale)
	if err := s.openSegment(s.segIndex + 1); err != nil {
		return err
	}
	syncDir(s.opts.Dir)
	s.segCount = 1
	s.snapSeq = s.seq
	s.snapCount = s.state.liveRecords()
	s.snapAt = s.clock.Now()
	s.hasSnap = true
	s.sinceSnap = 0
	s.snapshotsC.Inc()
	s.segG.Set(int64(s.segCount))
	return nil
}

// State returns a deep copy of the recovered/live state; consumers replay
// it into their registries without holding the store lock.
func (s *Store) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.clone()
}

// Status summarizes the store for admin surfaces.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Dir:             s.opts.Dir,
		LastSeq:         s.seq,
		Segments:        s.segCount,
		WALBytes:        s.walBytesLocked(),
		LiveRecords:     s.state.liveRecords(),
		SnapshotSeq:     s.snapSeq,
		SnapshotRecords: s.snapCount,
		HasSnapshot:     s.hasSnap,
		ReplayDuration:  s.replayDur,
		ReplayRecords:   s.replayRecords,
		TruncatedBytes:  s.truncatedTotal,
		Appended:        s.appended,
	}
	if s.hasSnap {
		st.SnapshotAge = s.clock.Now().Sub(s.snapAt)
		s.snapAgeG.Set(int64(st.SnapshotAge / time.Second))
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	if s.crashed {
		st.Err = ErrCrashed.Error()
	}
	return st
}

// walBytesLocked sums the on-disk WAL segment sizes.
func (s *Store) walBytesLocked() int64 {
	segments, _, err := listDir(s.opts.Dir)
	if err != nil {
		return s.segBytes
	}
	var total int64
	for _, name := range segments {
		if fi, err := os.Stat(filepath.Join(s.opts.Dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Close flushes and closes the active segment. The store is unusable
// afterwards; re-Open the directory to resume.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	var err error
	if !s.crashed {
		err = s.syncLocked()
	}
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.seg = nil
	return err
}

// --- journal adapters ---------------------------------------------------
//
// The registries and the lease service journal through tiny interfaces
// they each declare (atr.Journal, adr.Journal, lease.Journal); the types
// below satisfy them. Append errors do not bubble into registry calls —
// a mutation that served traffic is not failed because its journal write
// did not; the error is sticky, counted on glare_store_append_errors_total
// and visible in Status, and the site degrades to memory-only durability.

// RegistryLog journals one registry's mutations into the store.
type RegistryLog struct {
	s   *Store
	reg string
}

// RegistryJournal returns the journal adapter for the named registry
// (RegATR, RegADR).
func (s *Store) RegistryJournal(reg string) *RegistryLog {
	return &RegistryLog{s: s, reg: reg}
}

// RecordPut journals an upsert of the full property document.
func (l *RegistryLog) RecordPut(key string, doc *xmlutil.Node, lut, term time.Time) {
	_ = l.s.Append(Record{Op: OpPut, Reg: l.reg, Key: key, Doc: doc.String(), LUT: lut, Term: term})
}

// RecordDelete journals a removal.
func (l *RegistryLog) RecordDelete(key string) {
	_ = l.s.Append(Record{Op: OpDelete, Reg: l.reg, Key: key})
}

// LeaseLog journals the lease service's mutations into the store.
type LeaseLog struct{ s *Store }

// LeaseJournal returns the lease journal adapter.
func (s *Store) LeaseJournal() *LeaseLog { return &LeaseLog{s: s} }

// RecordAcquire journals a granted ticket.
func (l *LeaseLog) RecordAcquire(t lease.Ticket) {
	_ = l.s.Append(Record{Op: OpLeaseAcquire, Ticket: &t})
}

// RecordRelease journals an early release.
func (l *LeaseLog) RecordRelease(id uint64) {
	_ = l.s.Append(Record{Op: OpLeaseRelease, ID: id})
}

// RecordLimit journals a shared-concurrency bound.
func (l *LeaseLog) RecordLimit(deployment string, max int) {
	_ = l.s.Append(Record{Op: OpLeaseLimit, Key: deployment, Limit: max})
}

// DeployLog journals deployment step checkpoints into the store.
type DeployLog struct{ s *Store }

// DeployJournal returns the deployment checkpoint journal adapter.
func (s *Store) DeployJournal() *DeployLog { return &DeployLog{s: s} }

// RecordStep journals one completed build step.
func (l *DeployLog) RecordStep(st DeployStep) {
	_ = l.s.Append(Record{Op: OpDeployStep, Key: st.Type, Deploy: &st})
}

// RecordClear journals the end of a type's build — completion or rollback
// — dropping its checkpoints.
func (l *DeployLog) RecordClear(typeName string) {
	_ = l.s.Append(Record{Op: OpDeployClear, Key: typeName})
}

// HistoryLog journals the telemetry-history sampler's output into the
// store: series definitions once, then one small batch per sampler tick.
// Snapshot compaction turns the batches into fixed-size ring dumps, so a
// site's history costs bounded disk no matter how long it runs.
type HistoryLog struct{ s *Store }

// HistoryJournal returns the telemetry-history journal adapter.
func (s *Store) HistoryJournal() *HistoryLog { return &HistoryLog{s: s} }

// RecordCreate journals a new history series definition.
func (l *HistoryLog) RecordCreate(def rrd.SeriesDef) {
	_ = l.s.Append(Record{Op: OpHistoryCreate, Key: def.Name, HistoryDef: &def})
}

// RecordBatch journals one sampler tick's raw samples.
func (l *HistoryLog) RecordBatch(b rrd.Batch) {
	_ = l.s.Append(Record{Op: OpHistoryBatch, HistoryBatch: &b})
}

// CASLog journals the content-addressed artifact store's mutations, so
// RestartSite can re-offer every verified blob the site held without
// re-fetching a byte.
type CASLog struct{ s *Store }

// CASJournal returns the artifact-store journal adapter.
func (s *Store) CASJournal() *CASLog { return &CASLog{s: s} }

// RecordPut journals a verified blob's ingest.
func (l *CASLog) RecordPut(b CASBlob) {
	_ = l.s.Append(Record{Op: OpCASPut, Key: b.ID(), CAS: &b})
}

// RecordDelete journals a blob leaving the store (eviction or purge).
func (l *CASLog) RecordDelete(id string) {
	_ = l.s.Append(Record{Op: OpCASDelete, Key: id})
}
