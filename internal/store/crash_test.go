package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"glare/internal/faultinject"
)

// TestCrashMidAppendRecovers kills the store on the fatal append with a
// range of torn-frame fractions and proves the reopened store holds
// exactly the acknowledged records.
func TestCrashMidAppendRecovers(t *testing.T) {
	for _, cut := range []float64{0, 0.25, 0.5, 0.99, 1} {
		dir := t.TempDir()
		crasher := faultinject.NewStoreCrasher()
		s, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1,
			AppendHook: crasher.Hook})
		if err != nil {
			t.Fatal(err)
		}
		const fatal = 6
		crasher.ArmAfter(fatal, cut)
		var appendErr error
		acked := 0
		for i := 0; i < 10; i++ {
			appendErr = s.Append(put(RegATR, fmt.Sprintf("key-%d", i),
				"<Properties>crash fodder</Properties>", time.Time{}))
			if appendErr != nil {
				break
			}
			acked++
		}
		if !errors.Is(appendErr, ErrCrashed) {
			t.Fatalf("cut=%v: append error = %v, want ErrCrashed", cut, appendErr)
		}
		if acked != fatal-1 {
			t.Fatalf("cut=%v: %d acked appends before crash, want %d", cut, acked, fatal-1)
		}
		if !crasher.Crashed() {
			t.Fatalf("cut=%v: crasher did not fire", cut)
		}
		// Everything is dead after the crash, like the process it models.
		if err := s.Append(put(RegATR, "late", "<Properties/>", time.Time{})); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut=%v: post-crash append error = %v", cut, err)
		}
		if err := s.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut=%v: post-crash sync error = %v", cut, err)
		}
		s.Close()

		re, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut=%v: recovery failed: %v", cut, err)
		}
		got := len(re.State().Registries[RegATR])
		// cut=1 lands the whole fatal frame before dying, so recovery may
		// legitimately see one more record than was acknowledged; any other
		// cut must recover exactly the acknowledged prefix.
		want := acked
		if cut == 1 {
			want = acked + 1
		}
		if got != want {
			t.Fatalf("cut=%v: recovered %d records, want %d", cut, got, want)
		}
		if err := re.Append(put(RegATR, "resumed", "<Properties/>", time.Time{})); err != nil {
			t.Fatalf("cut=%v: append after recovery: %v", cut, err)
		}
		re.Close()
	}
}

// TestCrashUnderConcurrentAppends drives the store from several goroutines
// while the crash hook fires, then recovers — the -race CI job runs this
// to prove the append path, the crash path and recovery are data-race
// free.
func TestCrashUnderConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	crasher := faultinject.NewStoreCrasher()
	s, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1,
		AppendHook: crasher.Hook})
	if err != nil {
		t.Fatal(err)
	}
	crasher.ArmAfter(50, 0.5)
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := map[string]bool{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("g%d-%02d", g, i)
				if s.Append(put(RegATR, k, "<Properties>c</Properties>", time.Time{})) == nil {
					mu.Lock()
					acked[k] = true
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if !crasher.Crashed() {
		t.Fatal("crasher did not fire")
	}
	s.Close()

	re, err := Open(Options{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recovered := re.State().Registries[RegATR]
	// Every acknowledged append must be recovered (FsyncNever means the OS
	// had the bytes; the simulated crash only cuts the fatal frame).
	for k := range acked {
		if _, ok := recovered[k]; !ok {
			t.Fatalf("acked record %s lost by recovery", k)
		}
	}
	// And nothing beyond acked + the single torn frame can appear.
	if len(recovered) > len(acked)+1 {
		t.Fatalf("recovered %d records from %d acks", len(recovered), len(acked))
	}
}
