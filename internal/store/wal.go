package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Frame layout: [4B big-endian payload length][4B CRC32-IEEE of payload][payload].
const frameHeader = 8

// maxRecordBytes bounds a single record so a corrupt length field cannot
// make recovery attempt a multi-gigabyte read.
const maxRecordBytes = 16 << 20

// encodeFrame wraps one encoded record in a checksummed frame.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// scanResult is what scanning one file yields.
type scanResult struct {
	records []Record
	// good is the byte offset of the end of the last intact frame; bytes
	// past it are torn or corrupt.
	good int64
	// torn reports whether the file ended in a damaged frame.
	torn bool
}

// scanFrames decodes every intact frame from data, stopping (not failing)
// at the first torn or checksum-corrupt record. This is the property that
// makes recovery total: whatever a crash left behind, the longest valid
// prefix is the state.
func scanFrames(data []byte) scanResult {
	var res scanResult
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			res.good = off
			return res
		}
		if len(rest) < frameHeader {
			res.good, res.torn = off, true
			return res
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		sum := binary.BigEndian.Uint32(rest[4:8])
		if n > maxRecordBytes || int(n) > len(rest)-frameHeader {
			res.good, res.torn = off, true
			return res
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			res.good, res.torn = off, true
			return res
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// A frame that checksums but does not decode is corruption
			// written before the CRC was computed; treat it as a tear too.
			res.good, res.torn = off, true
			return res
		}
		res.records = append(res.records, rec)
		off += frameHeader + int64(n)
	}
}

// Segment and snapshot file naming. Zero-padded so lexical order is
// chronological order.
func segmentName(index uint64) string { return fmt.Sprintf("wal-%016d.log", index) }
func snapshotName(seq uint64) string  { return fmt.Sprintf("snap-%020d.snap", seq) }
func isSegment(name string) bool {
	return strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")
}
func isSnapshot(name string) bool {
	return strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap")
}
func segmentIndex(name string) uint64 {
	return parseSeq(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
}
func snapshotSeq(name string) uint64 {
	return parseSeq(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"))
}

func parseSeq(s string) uint64 {
	var n uint64
	_, _ = fmt.Sscanf(s, "%d", &n)
	return n
}

// listDir returns the sorted segment and snapshot file names in dir.
func listDir(dir string) (segments, snapshots []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case isSegment(e.Name()):
			segments = append(segments, e.Name())
		case isSnapshot(e.Name()):
			snapshots = append(snapshots, e.Name())
		}
	}
	sort.Strings(segments)
	sort.Strings(snapshots)
	return segments, snapshots, nil
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// truncateFile cuts a file back to size, discarding a torn tail.
func truncateFile(path string, size int64) error {
	return os.Truncate(path, size)
}

// removeFiles deletes the named files from dir, ignoring individual
// failures (a leftover file is re-collected by the next compaction).
func removeFiles(dir string, names []string) {
	for _, n := range names {
		_ = os.Remove(filepath.Join(dir, n))
	}
}
