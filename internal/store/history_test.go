package store

import (
	"math"
	"testing"
	"time"

	"glare/internal/rrd"
)

var histEpoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func histDef(name string) rrd.SeriesDef {
	return rrd.SeriesDef{
		Name: name, Kind: rrd.Counter, Step: time.Second,
		Archives: []rrd.ArchiveSpec{
			{CF: rrd.Average, Steps: 1, Rows: 60},
			{CF: rrd.Average, Steps: 10, Rows: 60},
		},
	}
}

// TestHistoryJournalRecovery: series creates and sample batches journaled
// through HistoryLog survive a close/reopen, and the recovered rrd store
// serves the same consolidated points.
func TestHistoryJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	j := s.HistoryJournal()
	j.RecordCreate(histDef("glare_fails_total"))
	for i := 0; i <= 20; i++ {
		j.RecordBatch(rrd.Batch{
			TS:      histEpoch.Add(time.Duration(i) * time.Second),
			Samples: []rrd.Sample{{Name: "glare_fails_total", Value: float64(i * 2)}},
		})
	}
	s.Close()

	re := mustOpen(t, Options{Dir: dir})
	defer re.Close()
	hist := re.State().History
	if hist == nil {
		t.Fatal("recovered state has no history store")
	}
	res, err := hist.Fetch("glare_fails_total", rrd.Average, histEpoch, histEpoch.Add(20*time.Second))
	if err != nil {
		t.Fatalf("fetch on recovered history: %v", err)
	}
	// 21 slots: the NaN seed point then a steady 2/s rate.
	if len(res.Points) != 21 {
		t.Fatalf("got %d points, want 21", len(res.Points))
	}
	for _, p := range res.Points[1:] {
		if p.V != 2 {
			t.Fatalf("recovered rate = %+v, want steady 2/s", res.Points)
		}
	}
}

// TestHistorySnapshotCompaction: snapshot compaction folds many batches
// into one fixed-size series dump, NaN slots survive the JSON snapshot,
// and WAL batches replayed over the snapshot do not double-count.
func TestHistorySnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SnapshotEvery: 16, SegmentMaxBytes: 1 << 12})
	j := s.HistoryJournal()
	j.RecordCreate(histDef("glare_fails_total"))
	total := 0.0
	for i := 0; i <= 40; i++ {
		if i%7 == 3 {
			continue // leave unknown slots so NaN crosses the snapshot
		}
		total += 1
		j.RecordBatch(rrd.Batch{
			TS:      histEpoch.Add(time.Duration(i) * time.Second),
			Samples: []rrd.Sample{{Name: "glare_fails_total", Value: total}},
		})
	}
	st := s.Status()
	if !st.HasSnapshot {
		t.Fatal("no snapshot taken")
	}
	want, err := s.State().History.Fetch("glare_fails_total", rrd.Average, histEpoch, histEpoch.Add(40*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := mustOpen(t, Options{Dir: dir})
	defer re.Close()
	got, err := re.State().History.Fetch("glare_fails_total", rrd.Average, histEpoch, histEpoch.Add(40*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("recovered %d points, want %d", len(got.Points), len(want.Points))
	}
	sawNaN := false
	for i := range want.Points {
		a, b := want.Points[i].V, got.Points[i].V
		if math.IsNaN(a) {
			sawNaN = true
		}
		if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
			t.Fatalf("point %d diverged after recovery: %v vs %v", i, a, b)
		}
	}
	if !sawNaN {
		t.Fatal("test did not exercise NaN slots across the snapshot")
	}
}
