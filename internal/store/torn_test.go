package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seedSegment writes n records into a fresh store dir and returns the
// single segment's path and raw bytes.
func seedSegment(t *testing.T, n int) (dir, segPath string, data []byte) {
	t.Helper()
	dir = t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: -1})
	for i := 0; i < n; i++ {
		appendAll(t, s, put(RegATR, fmt.Sprintf("key-%02d", i),
			"<Properties>some payload body</Properties>", time.Time{}))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 1 {
		t.Fatalf("segments = %v, want 1", segments)
	}
	segPath = filepath.Join(dir, segments[0])
	data, err = os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	return dir, segPath, data
}

// lastFrameStart walks the frame headers to the offset where the final
// frame begins.
func lastFrameStart(t *testing.T, data []byte) int {
	t.Helper()
	off, prev := 0, 0
	for off < len(data) {
		prev = off
		n := binary.BigEndian.Uint32(data[off : off+4])
		off += frameHeader + int(n)
	}
	if off != len(data) {
		t.Fatalf("frame walk ended at %d of %d", off, len(data))
	}
	return prev
}

// TestTornTailEveryOffset truncates the segment at every byte offset
// inside the last frame — every possible power-cut point of the final
// append — and proves recovery always yields exactly the records before
// it, leaves the store appendable, and never fails the boot.
func TestTornTailEveryOffset(t *testing.T) {
	const records = 5
	_, _, data := seedSegment(t, records)
	start := lastFrameStart(t, data)

	for cut := start; cut < len(data); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		st := s.State()
		if n := len(st.Registries[RegATR]); n != records-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, n, records-1)
		}
		status := s.Status()
		if status.TruncatedBytes != int64(cut-start) {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, status.TruncatedBytes, cut-start)
		}
		if status.LastSeq != records-1 {
			t.Fatalf("cut=%d: lastSeq = %d", cut, status.LastSeq)
		}
		// The truncated store accepts the re-issued mutation.
		if err := s.Append(put(RegATR, "again", "<Properties/>", time.Time{})); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s.Close()

		// And the repaired log replays cleanly a second time.
		re, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut=%d: second recovery: %v", cut, err)
		}
		if n := len(re.State().Registries[RegATR]); n != records {
			t.Fatalf("cut=%d: second boot has %d records, want %d", cut, n, records)
		}
		re.Close()
	}
}

// TestCorruptByteDropsTail flips single bytes in the last frame's length,
// checksum and payload regions; each corruption must cost exactly the
// final record.
func TestCorruptByteDropsTail(t *testing.T) {
	const records = 4
	_, _, data := seedSegment(t, records)
	start := lastFrameStart(t, data)

	for _, off := range []int{start, start + 4, start + frameHeader + 2} {
		dir := t.TempDir()
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		if n := len(s.State().Registries[RegATR]); n != records-1 {
			t.Fatalf("offset %d: recovered %d records, want %d", off, n, records-1)
		}
		s.Close()
	}
}

// TestTearVoidsLaterSegments: a tear in an early segment discards every
// segment after it — bytes past a torn frame have no defined order.
func TestTearVoidsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncNever, SegmentMaxBytes: 200, SnapshotEvery: -1})
	for i := 0; i < 12; i++ {
		appendAll(t, s, put(RegATR, fmt.Sprintf("key-%02d", i),
			"<Properties>segment filler text</Properties>", time.Time{}))
	}
	s.Close()
	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) < 3 {
		t.Fatalf("segments = %v, want at least 3", segments)
	}
	// Corrupt the second segment's first frame checksum.
	victim := filepath.Join(dir, segments[1])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	first, err := os.ReadFile(filepath.Join(dir, segments[0]))
	if err != nil {
		t.Fatal(err)
	}
	want := len(scanFrames(first).records)
	if n := len(re.State().Registries[RegATR]); n != want {
		t.Fatalf("recovered %d records, want the %d of segment 1 only", n, want)
	}
	after, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("segments after recovery = %v, want truncated seg 2 kept and later ones deleted", after)
	}
	if re.Status().TruncatedBytes == 0 {
		t.Fatal("truncation not accounted")
	}
}
