package store

import (
	"os"
	"path/filepath"
)

// Snapshot files hold the flattened live state as ordinary CRC frames,
// terminated by an opSnapSeal record. They are written to a temp file,
// fsynced, then renamed into place, so a crash mid-snapshot leaves either
// the previous snapshot or a sealed new one — never a half-trusted file:
// an unsealed snapshot is skipped by recovery and the WAL (which still
// holds everything the snapshot was compacting) remains authoritative.

// writeSnapshot persists state as the snapshot covering records [1, seq].
func writeSnapshot(dir string, seq uint64, state *State) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	for _, rec := range state.records() {
		payload, err := rec.encode()
		if err != nil {
			cleanup()
			return err
		}
		if _, err := tmp.Write(encodeFrame(payload)); err != nil {
			cleanup()
			return err
		}
	}
	// The seal carries MaxID: the highest ticket ID ever issued may belong
	// to an already-released ticket absent from the flattened state, and
	// recovered services must never reissue it.
	seal, err := Record{Op: opSnapSeal, Seq: seq, ID: state.Leases.MaxID}.encode()
	if err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.Write(encodeFrame(seal)); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName(seq))); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// loadSnapshot reads a snapshot file; ok is false when the file is torn,
// corrupt, or missing its seal, in which case the caller falls back to an
// older snapshot (or none).
func loadSnapshot(path string) (st *State, records int, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	res := scanFrames(data)
	if res.torn || len(res.records) == 0 {
		return nil, 0, false
	}
	last := res.records[len(res.records)-1]
	if last.Op != opSnapSeal {
		return nil, 0, false
	}
	st = newState()
	for _, rec := range res.records[:len(res.records)-1] {
		st.apply(rec)
	}
	if last.ID > st.Leases.MaxID {
		st.Leases.MaxID = last.ID
	}
	return st, len(res.records) - 1, true
}
