package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"glare/internal/lease"
	"glare/internal/simclock"
)

// put builds a registry upsert record with a recognizable document.
func put(reg, key, doc string, lut time.Time) Record {
	return Record{Op: OpPut, Reg: reg, Key: key, Doc: doc, LUT: lut}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendAll(t *testing.T, s *Store, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtual(time.Time{})
	lut := clock.Now()

	s := mustOpen(t, Options{Dir: dir, Clock: clock})
	tk := lease.Ticket{ID: 0, Deployment: "jpovray", Client: "c1",
		Kind: lease.Exclusive, Start: lut, End: lut.Add(time.Hour)}
	appendAll(t, s,
		put(RegATR, "POVray", "<Properties>povray</Properties>", lut),
		put(RegADR, "jpovray", "<Properties>jpovray</Properties>", lut),
		put(RegATR, "Java", "<Properties>java-old</Properties>", lut),
		put(RegATR, "Java", "<Properties>java-new</Properties>", lut.Add(time.Minute)),
		Record{Op: OpLeaseAcquire, Ticket: &tk},
		Record{Op: OpLeaseLimit, Key: "jpovray", Limit: 3},
		put(RegATR, "Ant", "<Properties>ant</Properties>", lut),
		Record{Op: OpDelete, Reg: RegATR, Key: "Ant"},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, Clock: clock})
	st := re.State()
	atr := st.Registries[RegATR]
	if len(atr) != 2 {
		t.Fatalf("atr entries = %d, want 2 (%v)", len(atr), atr)
	}
	if _, ok := atr["Ant"]; ok {
		t.Fatal("deleted entry survived replay")
	}
	// Last write wins, and the journaled LUT is preserved exactly.
	if got := atr["Java"]; got.Doc != "<Properties>java-new</Properties>" ||
		!got.LUT.Equal(lut.Add(time.Minute)) {
		t.Fatalf("Java entry = %+v", got)
	}
	if got := st.Registries[RegADR]["jpovray"].Doc; got != "<Properties>jpovray</Properties>" {
		t.Fatalf("adr doc = %q", got)
	}
	got, ok := st.Leases.Tickets[tk.ID]
	if !ok || got.Client != "c1" || got.Kind != lease.Exclusive {
		t.Fatalf("ticket = %+v ok=%v", got, ok)
	}
	if st.Leases.Limits["jpovray"] != 3 {
		t.Fatalf("limit = %d", st.Leases.Limits["jpovray"])
	}
	// Recovery resumes the sequence where the journal left off.
	if err := re.Append(put(RegATR, "Wien2k", "<Properties/>", lut)); err != nil {
		t.Fatal(err)
	}
	if re.Status().LastSeq != 9 {
		t.Fatalf("lastSeq = %d, want 9", re.Status().LastSeq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SegmentMaxBytes: 256, SnapshotEvery: -1})
	for i := 0; i < 40; i++ {
		appendAll(t, s, put(RegATR, key(i), "<Properties>payload-padding-padding</Properties>", time.Time{}))
	}
	if segs := s.Status().Segments; segs < 3 {
		t.Fatalf("segments = %d, want rotation to have produced several", segs)
	}
	s.Close()

	re := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if n := len(re.State().Registries[RegATR]); n != 40 {
		t.Fatalf("replayed %d entries across segments, want 40", n)
	}
}

func key(i int) string { return string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SnapshotEvery: 10, SegmentMaxBytes: 1 << 10})
	for i := 0; i < 25; i++ {
		appendAll(t, s, put(RegATR, key(i%7), "<Properties>v</Properties>", time.Time{}))
	}
	st := s.Status()
	if !st.HasSnapshot {
		t.Fatal("no snapshot after 25 appends with SnapshotEvery=10")
	}
	// Compaction collapsed 20 journaled records into 7 live ones.
	if st.SnapshotRecords != 7 {
		t.Fatalf("snapshot records = %d, want 7", st.SnapshotRecords)
	}
	s.Close()

	// Reopen: state comes from the snapshot plus the 5-record WAL tail.
	re := mustOpen(t, Options{Dir: dir, SnapshotEvery: 10})
	if n := len(re.State().Registries[RegATR]); n != 7 {
		t.Fatalf("live entries = %d, want 7", n)
	}
	if re.Status().LastSeq != 25 {
		t.Fatalf("lastSeq = %d, want 25", re.Status().LastSeq)
	}
}

// TestSnapshotPreservesMaxLeaseID guards the ID-retirement invariant
// through compaction: the highest journaled ticket ID must survive a
// snapshot even when that ticket was released before the snapshot was
// taken (the flattened state no longer contains it).
func TestSnapshotPreservesMaxLeaseID(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	tk := lease.Ticket{ID: 41, Deployment: "d", Client: "c", Kind: lease.Shared,
		End: time.Now().Add(time.Hour)}
	appendAll(t, s,
		Record{Op: OpLeaseAcquire, Ticket: &tk},
		Record{Op: OpLeaseRelease, ID: 41},
	)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if got := re.State().Leases.MaxID; got != 41 {
		t.Fatalf("MaxID through snapshot = %d, want 41", got)
	}
}

func TestSnapshotDeletesCompactedFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SegmentMaxBytes: 128, SnapshotEvery: -1})
	for i := 0; i < 20; i++ {
		appendAll(t, s, put(RegATR, key(i), "<Properties>grow</Properties>", time.Time{}))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segments, snapshots, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 1 {
		t.Fatalf("segments after compaction = %v, want one fresh segment", segments)
	}
	if len(snapshots) != 1 {
		t.Fatalf("snapshots = %v, want exactly one", snapshots)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := t.TempDir()
		s := mustOpen(t, Options{Dir: dir, Fsync: policy})
		appendAll(t, s,
			put(RegATR, "A", "<Properties/>", time.Time{}),
			put(RegATR, "B", "<Properties/>", time.Time{}),
		)
		s.Close()
		re := mustOpen(t, Options{Dir: dir, Fsync: policy})
		if n := len(re.State().Registries[RegATR]); n != 2 {
			t.Fatalf("%v: replayed %d entries, want 2", policy, n)
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever,
		"": FsyncInterval,
	}
	for in, want := range cases {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestCorruptSnapshotFallsBackToWAL: a snapshot without its seal record
// (crash mid-snapshot) is skipped and the WAL still reproduces the state.
func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	appendAll(t, s,
		put(RegATR, "A", "<Properties>a</Properties>", time.Time{}),
		put(RegATR, "B", "<Properties>b</Properties>", time.Time{}),
	)
	s.Sync()
	// Fabricate a torn snapshot: valid frames but no seal.
	rec, _ := put(RegATR, "X", "<Properties>ghost</Properties>", time.Time{}).encode()
	if err := os.WriteFile(filepath.Join(dir, snapshotName(99)), encodeFrame(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	st := re.State()
	if _, ok := st.Registries[RegATR]["X"]; ok {
		t.Fatal("unsealed snapshot was trusted")
	}
	if len(st.Registries[RegATR]) != 2 {
		t.Fatalf("WAL fallback lost records: %v", st.Registries[RegATR])
	}
}

func TestStatusSurface(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtual(time.Time{})
	s := mustOpen(t, Options{Dir: dir, Clock: clock, SnapshotEvery: -1})
	appendAll(t, s, put(RegADR, "d1", "<Properties/>", clock.Now()))
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(90 * time.Second)
	st := s.Status()
	if st.Dir != dir || st.LastSeq != 1 || !st.HasSnapshot || st.LiveRecords != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.SnapshotAge != 90*time.Second {
		t.Fatalf("snapshot age = %v", st.SnapshotAge)
	}
	if st.Appended != 1 {
		t.Fatalf("appended = %d", st.Appended)
	}
}

// TestDeployCheckpointRoundTrip proves build-step checkpoints replay with
// their truncate-on-divergence semantics, survive snapshot compaction, and
// vanish on clear.
func TestDeployCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	j := s.DeployJournal()
	j.RecordStep(DeployStep{Type: "Wien2k", Build: "Wien2k", Step: "Init", Index: 0})
	j.RecordStep(DeployStep{Type: "Wien2k", Build: "Wien2k", Step: "Download", Index: 1,
		Transfer: true, MD5: "abc123",
		Files: []DeployFile{{Path: "/tmp/wien2k/wien2k.tgz", Size: 100, New: true}}})
	j.RecordStep(DeployStep{Type: "Wien2k", Build: "Wien2k", Step: "Expand", Index: 2,
		Unpacks: []DeployUnpack{{Dir: "/tmp/wien2k/wien2k-05", Artifact: "Wien2k"}}})
	j.RecordStep(DeployStep{Type: "Counter", Build: "Counter", Step: "Init", Index: 0})
	// A re-run at index 1 truncates the stale Expand checkpoint.
	j.RecordStep(DeployStep{Type: "Wien2k", Build: "Wien2k", Step: "Download", Index: 1,
		Transfer: true, MD5: "def456"})
	j.RecordClear("Counter")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	st := re.State()
	if _, ok := st.Deploys["Counter"]; ok {
		t.Fatal("cleared build survived replay")
	}
	steps := st.Deploys["Wien2k"]
	if len(steps) != 2 {
		t.Fatalf("Wien2k checkpoints = %+v, want Init + re-run Download", steps)
	}
	if steps[1].MD5 != "def456" || len(steps[1].Files) != 0 {
		t.Fatalf("truncation kept the stale download: %+v", steps[1])
	}

	// Checkpoints are part of the snapshot image, not just the WAL.
	if err := re.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if got := third.State().Deploys["Wien2k"]; len(got) != 2 || got[0].Step != "Init" {
		t.Fatalf("snapshot lost checkpoints: %+v", got)
	}
}

// TestBootFromSnapshotOnly pins recovery when the snapshot is the ONLY
// artifact left: every WAL segment (including the post-snapshot seal
// segment) has been deleted — the shape a backup-restore or an aggressive
// cleanup leaves behind. The store must boot the full flattened state
// from the snapshot alone and resume the sequence from the snapshot's
// seal, not from zero.
func TestBootFromSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtual(time.Time{})
	lut := clock.Now()

	s := mustOpen(t, Options{Dir: dir, Clock: clock, SnapshotEvery: -1})
	tk := lease.Ticket{ID: 7, Deployment: "jpovray", Client: "c1",
		Kind: lease.Exclusive, Start: lut, End: lut.Add(time.Hour)}
	appendAll(t, s,
		put(RegATR, "POVray", "<Properties>povray</Properties>", lut),
		put(RegADR, "jpovray", "<Properties>jpovray</Properties>", lut),
		Record{Op: OpLeaseAcquire, Ticket: &tk},
		put(RegATR, "Ant", "<Properties>ant</Properties>", lut),
		Record{Op: OpDelete, Reg: RegATR, Key: "Ant"},
	)
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	wantSeq := s.Status().LastSeq
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segments, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) == 0 {
		t.Fatal("expected a fresh segment after the snapshot")
	}
	for _, seg := range segments {
		if err := os.Remove(filepath.Join(dir, seg)); err != nil {
			t.Fatal(err)
		}
	}

	re := mustOpen(t, Options{Dir: dir, Clock: clock, SnapshotEvery: -1})
	st := re.State()
	atr := st.Registries[RegATR]
	if len(atr) != 1 || atr["POVray"].Doc != "<Properties>povray</Properties>" {
		t.Fatalf("atr from snapshot alone = %v", atr)
	}
	if _, ok := atr["Ant"]; ok {
		t.Fatal("deleted entry resurrected from snapshot")
	}
	if got := st.Registries[RegADR]["jpovray"].Doc; got != "<Properties>jpovray</Properties>" {
		t.Fatalf("adr doc = %q", got)
	}
	if got, ok := st.Leases.Tickets[tk.ID]; !ok || got.Client != "c1" {
		t.Fatalf("ticket from snapshot = %+v ok=%v", got, ok)
	}
	status := re.Status()
	if !status.HasSnapshot || status.ReplayRecords != 0 {
		t.Fatalf("status after snapshot-only boot = %+v", status)
	}
	// The sequence resumes above the snapshot seal, so records written
	// after the restore never collide with pre-snapshot sequence numbers.
	if err := re.Append(put(RegATR, "Java", "<Properties/>", lut)); err != nil {
		t.Fatal(err)
	}
	if got := re.Status().LastSeq; got <= wantSeq {
		t.Fatalf("lastSeq after snapshot-only boot = %d, want > %d", got, wantSeq)
	}
}

func TestCASBlobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clock := simclock.NewVirtual(time.Time{})
	added := clock.Now().Add(time.Minute)

	s := mustOpen(t, Options{Dir: dir, Clock: clock, SnapshotEvery: -1})
	j := s.CASJournal()
	j.RecordPut(CASBlob{Algo: "sha256", Sum: "aaa", Actual: "aaa", Size: 5 << 20,
		MD5: "m1", Artifact: "Ant", URL: "http://repo/ant.tgz", Added: added})
	j.RecordPut(CASBlob{Algo: "md5", Sum: "bbb", Actual: "bbb", Size: 1 << 20, Artifact: "POVray"})
	j.RecordPut(CASBlob{Algo: "md5", Sum: "ccc", Actual: "ccc", Size: 2 << 20})
	j.RecordDelete("md5:ccc") // evicted: must not survive replay
	// Re-ingest after corruption: last write wins.
	j.RecordPut(CASBlob{Algo: "md5", Sum: "bbb", Actual: "rot-bbb", Size: 1 << 20, Artifact: "POVray"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, Clock: clock, SnapshotEvery: -1})
	st := re.State()
	if len(st.CAS) != 2 {
		t.Fatalf("CAS blobs after replay = %+v", st.CAS)
	}
	ant := st.CAS["sha256:aaa"]
	if ant.Artifact != "Ant" || ant.Size != 5<<20 || !ant.Added.Equal(added) || ant.URL != "http://repo/ant.tgz" {
		t.Fatalf("ant blob = %+v", ant)
	}
	if got := st.CAS["md5:bbb"]; got.Actual != "rot-bbb" {
		t.Fatalf("re-ingested blob = %+v, want last write to win", got)
	}
	if _, ok := st.CAS["md5:ccc"]; ok {
		t.Fatal("deleted blob survived replay")
	}

	// Blobs are part of the snapshot image, not just the WAL.
	if err := re.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	third := mustOpen(t, Options{Dir: dir, Clock: clock, SnapshotEvery: -1})
	if got := third.State().CAS; len(got) != 2 || got["sha256:aaa"].Artifact != "Ant" {
		t.Fatalf("snapshot lost CAS blobs: %+v", got)
	}
}
