package store

import (
	"encoding/json"
	"fmt"
	"time"

	"glare/internal/lease"
	"glare/internal/rrd"
)

// Registry names the store journals under. The store itself is agnostic to
// what a registry holds; these constants keep the RDM wiring and the
// recovery path agreeing on the names.
const (
	RegATR = "atr"
	RegADR = "adr"
)

// Op is the kind of one journaled mutation.
type Op uint8

const (
	// OpPut upserts a registry entry (full property document).
	OpPut Op = iota + 1
	// OpDelete removes a registry entry.
	OpDelete
	// OpLeaseAcquire installs a lease ticket.
	OpLeaseAcquire
	// OpLeaseRelease removes a lease ticket by ID.
	OpLeaseRelease
	// OpLeaseLimit sets a deployment's shared-lease concurrency bound.
	OpLeaseLimit
	// opSnapSeal terminates a snapshot file; a snapshot without its seal
	// was torn mid-write and is ignored during recovery.
	opSnapSeal
	// OpDeployStep checkpoints one completed deployment step. Appended
	// after opSnapSeal so the wire values of the earlier ops — already on
	// disk in existing journals — stay stable.
	OpDeployStep
	// OpDeployClear drops every checkpoint of a type's build: the build
	// completed (and was registered) or was rolled back.
	OpDeployClear
	// OpHistoryCreate declares a telemetry-history series (rrd). Appended
	// after OpDeployClear so existing journals keep their wire values.
	OpHistoryCreate
	// OpHistoryBatch appends one history-sampler tick's raw samples; the
	// WAL form of history between snapshots.
	OpHistoryBatch
	// OpHistorySeries restores one series' full ring dump; the snapshot
	// form of history (fixed-size, so snapshots stay bounded no matter how
	// many batches the WAL absorbed).
	OpHistorySeries
	// OpCASPut records a verified blob entering the site's content-
	// addressed artifact store. Appended after OpHistorySeries so existing
	// journals keep their wire values.
	OpCASPut
	// OpCASDelete records a CAS entry leaving the store (eviction or
	// verify-failure purge); Key carries the "algo:sum" blob ID.
	OpCASDelete
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpLeaseAcquire:
		return "lease-acquire"
	case OpLeaseRelease:
		return "lease-release"
	case OpLeaseLimit:
		return "lease-limit"
	case opSnapSeal:
		return "snap-seal"
	case OpDeployStep:
		return "deploy-step"
	case OpDeployClear:
		return "deploy-clear"
	case OpHistoryCreate:
		return "history-create"
	case OpHistoryBatch:
		return "history-batch"
	case OpHistorySeries:
		return "history-series"
	case OpCASPut:
		return "cas-put"
	case OpCASDelete:
		return "cas-delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one journaled mutation. Registry puts carry the whole property
// document: registries mutate documents in place, so re-journaling the
// full document after each mutation makes every record self-contained and
// replay a pure last-write-wins fold — no partial-update merge logic can
// go wrong during recovery.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  Op     `json:"op"`
	// Reg is the registry name (RegATR, RegADR) for put/delete records;
	// empty for lease records.
	Reg string `json:"reg,omitempty"`
	// Key is the resource key (put/delete) or the deployment name
	// (lease-limit).
	Key string `json:"key,omitempty"`
	// Doc is the XML text of the resource property document (put only).
	Doc string `json:"doc,omitempty"`
	// LUT is the resource's LastUpdateTime; preserved across recovery so
	// cache revival and anti-entropy keep working after a restart.
	LUT time.Time `json:"lut,omitempty"`
	// Term is the resource's scheduled termination time (zero = never).
	Term time.Time `json:"term,omitempty"`
	// Ticket is the acquired lease (lease-acquire only).
	Ticket *lease.Ticket `json:"ticket,omitempty"`
	// ID is the released ticket ID (lease-release only).
	ID uint64 `json:"id,omitempty"`
	// Limit is the shared-lease bound (lease-limit only).
	Limit int `json:"limit,omitempty"`
	// Deploy is the checkpoint payload (deploy-step only); Key carries the
	// activity type name for both deploy-step and deploy-clear.
	Deploy *DeployStep `json:"deploy,omitempty"`
	// HistoryDef declares a history series (history-create only); Key
	// carries the series name.
	HistoryDef *rrd.SeriesDef `json:"hdef,omitempty"`
	// HistoryBatch is one sampler tick's raw values (history-batch only).
	HistoryBatch *rrd.Batch `json:"hbatch,omitempty"`
	// HistorySeries is one series' full ring dump (history-series only).
	HistorySeries *rrd.SeriesDump `json:"hseries,omitempty"`
	// CAS is the blob metadata (cas-put only); Key carries the "algo:sum"
	// blob ID for both cas-put and cas-delete.
	CAS *CASBlob `json:"cas,omitempty"`
}

// CASBlob is one content-addressed artifact-store entry as journaled. The
// simulated grid moves no real bytes, so the WAL form is the metadata the
// CAS needs to re-offer the blob after a restart: size for budget and
// transfer-cost accounting, the filesystem fingerprint for
// materialization, and the content sum observed at ingest.
type CASBlob struct {
	Algo     string    `json:"algo"`
	Sum      string    `json:"sum"`
	Actual   string    `json:"actual,omitempty"` // observed content sum; equals Sum for healthy copies
	Size     int64     `json:"size"`
	MD5      string    `json:"md5,omitempty"`
	Artifact string    `json:"artifact,omitempty"`
	URL      string    `json:"url,omitempty"`
	Added    time.Time `json:"added,omitempty"`
}

// ID returns the blob's "algo:sum" key.
func (b CASBlob) ID() string { return b.Algo + ":" + b.Sum }

// DeployStep is one completed step of an on-demand build, journaled so an
// interrupted deployment can resume at the first incomplete step after a
// site restart. The simulated site filesystem is memory-only (DESIGN §10),
// so a checkpoint is self-contained: it carries every filesystem entry and
// every piece of site side-state the step produced, letting resume
// re-materialize the step's effects at zero clock and transfer cost.
type DeployStep struct {
	// Type is the activity type being built; Build the deploy-file name.
	Type  string `json:"type"`
	Build string `json:"build"`
	// Step is the deploy-file step name; Index its position in the
	// topological order. A re-journaled index truncates any stale tail.
	Step  string `json:"step"`
	Index int    `json:"index"`
	// Transfer marks a globus-url-copy step; MD5 is the deploy-file's
	// declared md5sum, so resume can prove the cached download is the one
	// the (possibly updated) deploy-file still wants.
	Transfer bool   `json:"transfer,omitempty"`
	MD5      string `json:"md5,omitempty"`
	// Files are the filesystem entries the step created or changed;
	// Removed the paths it deleted.
	Files   []DeployFile `json:"files,omitempty"`
	Removed []string     `json:"removed,omitempty"`
	// Side-state the step produced on the site: archive unpacks, configure
	// prefixes and deployed service endpoints.
	Unpacks  []DeployUnpack  `json:"unpacks,omitempty"`
	Prefixes []DeployPrefix  `json:"prefixes,omitempty"`
	Services []DeployService `json:"services,omitempty"`
}

// DeployFile is one filesystem entry a step produced. New marks entries
// whose path did not exist before the step — the set rollback removes.
type DeployFile struct {
	Path     string `json:"path"`
	Kind     int    `json:"kind"`
	Size     int64  `json:"size,omitempty"`
	MD5      string `json:"md5,omitempty"`
	Artifact string `json:"artifact,omitempty"`
	New      bool   `json:"new,omitempty"`
}

// DeployUnpack records that a step expanded an artifact's archive into a
// directory (resolved back through the artifact repo on resume).
type DeployUnpack struct {
	Dir      string `json:"dir"`
	Artifact string `json:"artifact"`
}

// DeployPrefix records a configure run's install prefix for a source dir.
type DeployPrefix struct {
	Dir    string `json:"dir"`
	Prefix string `json:"prefix"`
}

// DeployService records a service endpoint the step brought up.
type DeployService struct {
	Name string `json:"name"`
	Home string `json:"home"`
}

func (r Record) encode() ([]byte, error) { return json.Marshal(r) }

func decodeRecord(b []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Entry is one live registry entry in the recovered state.
type Entry struct {
	Doc  string
	LUT  time.Time
	Term time.Time
}

// LeaseState is the recovered reservation-service state.
type LeaseState struct {
	// Tickets holds every journaled, unreleased ticket — including ones
	// that have expired by recovery time; the lease service drops those
	// during Restore so they are never resurrected.
	Tickets map[uint64]lease.Ticket
	// Limits holds per-deployment shared-lease bounds.
	Limits map[string]int
	// MaxID is the highest ticket ID ever journaled, so recovered services
	// never reissue an ID a client may still hold.
	MaxID uint64
}

// State is the materialized view of the journal: what a site's registries
// and lease service looked like at the last appended record.
type State struct {
	Registries map[string]map[string]Entry
	Leases     LeaseState
	// Deploys maps an activity type name to the checkpointed steps of its
	// interrupted build, in step order.
	Deploys map[string][]DeployStep
	// History is the recovered telemetry-history store; nil until the
	// first history record is applied, so sites without history pay
	// nothing.
	History *rrd.Store
	// CAS maps "algo:sum" blob IDs to held artifact-store entries.
	CAS map[string]CASBlob
}

func newState() *State {
	return &State{
		Registries: map[string]map[string]Entry{},
		Leases: LeaseState{
			Tickets: map[uint64]lease.Ticket{},
			Limits:  map[string]int{},
		},
		Deploys: map[string][]DeployStep{},
		CAS:     map[string]CASBlob{},
	}
}

// apply folds one record into the state.
func (st *State) apply(r Record) {
	switch r.Op {
	case OpPut:
		reg := st.Registries[r.Reg]
		if reg == nil {
			reg = map[string]Entry{}
			st.Registries[r.Reg] = reg
		}
		reg[r.Key] = Entry{Doc: r.Doc, LUT: r.LUT, Term: r.Term}
	case OpDelete:
		delete(st.Registries[r.Reg], r.Key)
	case OpLeaseAcquire:
		if r.Ticket != nil {
			st.Leases.Tickets[r.Ticket.ID] = *r.Ticket
			if r.Ticket.ID > st.Leases.MaxID {
				st.Leases.MaxID = r.Ticket.ID
			}
		}
	case OpLeaseRelease:
		delete(st.Leases.Tickets, r.ID)
	case OpLeaseLimit:
		if r.Limit <= 0 {
			delete(st.Leases.Limits, r.Key)
		} else {
			st.Leases.Limits[r.Key] = r.Limit
		}
	case OpDeployStep:
		if r.Deploy != nil {
			d := *r.Deploy
			list := st.Deploys[d.Type]
			// A step re-run after divergence truncates the stale tail of
			// the previous attempt before taking its slot.
			if d.Index < len(list) {
				list = list[:d.Index]
			}
			st.Deploys[d.Type] = append(list, d)
		}
	case OpDeployClear:
		delete(st.Deploys, r.Key)
	case OpHistoryCreate:
		if r.HistoryDef != nil {
			_ = st.history().Create(*r.HistoryDef)
		}
	case OpHistoryBatch:
		if r.HistoryBatch != nil {
			for _, smp := range r.HistoryBatch.Samples {
				// Stale timestamps are ErrPast by design: replaying a WAL
				// over a snapshot that already contains the batch is a no-op.
				_ = st.history().Update(smp.Name, r.HistoryBatch.TS, smp.Value)
			}
		}
	case OpHistorySeries:
		if r.HistorySeries != nil {
			_ = st.history().RestoreSeries(*r.HistorySeries)
		}
	case OpCASPut:
		if r.CAS != nil {
			if st.CAS == nil {
				st.CAS = map[string]CASBlob{}
			}
			st.CAS[r.CAS.ID()] = *r.CAS
		}
	case OpCASDelete:
		delete(st.CAS, r.Key)
	}
}

// history lazily creates the rrd store on first history record.
func (st *State) history() *rrd.Store {
	if st.History == nil {
		st.History = rrd.NewStore(0)
	}
	return st.History
}

// liveRecords counts the records a snapshot of this state would hold.
func (st *State) liveRecords() int {
	n := 0
	for _, reg := range st.Registries {
		n += len(reg)
	}
	n += len(st.Leases.Tickets) + len(st.Leases.Limits)
	for _, steps := range st.Deploys {
		n += len(steps)
	}
	if st.History != nil {
		n += st.History.Len()
	}
	n += len(st.CAS)
	return n
}

// records flattens the state back into self-contained records, the form
// snapshots are written in. Iteration order is not significant: replaying
// a snapshot is a fold over independent keys.
func (st *State) records() []Record {
	out := make([]Record, 0, st.liveRecords())
	for reg, entries := range st.Registries {
		for key, e := range entries {
			out = append(out, Record{Op: OpPut, Reg: reg, Key: key, Doc: e.Doc, LUT: e.LUT, Term: e.Term})
		}
	}
	for _, t := range st.Leases.Tickets {
		t := t
		out = append(out, Record{Op: OpLeaseAcquire, Ticket: &t})
	}
	for dep, max := range st.Leases.Limits {
		out = append(out, Record{Op: OpLeaseLimit, Key: dep, Limit: max})
	}
	for _, steps := range st.Deploys {
		// Within a type the slice order is the step order; replay relies
		// on each record's Index, so emitting types in any order is fine.
		for i := range steps {
			d := steps[i]
			out = append(out, Record{Op: OpDeployStep, Key: d.Type, Deploy: &d})
		}
	}
	if st.History != nil {
		// One fixed-size dump per series: however many batches the WAL
		// absorbed, the snapshot holds exactly the ring contents.
		for _, d := range st.History.Dump() {
			d := d
			out = append(out, Record{Op: OpHistorySeries, Key: d.Def.Name, HistorySeries: &d})
		}
	}
	for _, b := range st.CAS {
		b := b
		out = append(out, Record{Op: OpCASPut, Key: b.ID(), CAS: &b})
	}
	return out
}

// clone deep-copies the state so callers can consume it without racing
// the store's own apply path.
func (st *State) clone() *State {
	out := newState()
	for reg, entries := range st.Registries {
		m := make(map[string]Entry, len(entries))
		for k, e := range entries {
			m[k] = e
		}
		out.Registries[reg] = m
	}
	for id, t := range st.Leases.Tickets {
		out.Leases.Tickets[id] = t
	}
	for dep, max := range st.Leases.Limits {
		out.Leases.Limits[dep] = max
	}
	out.Leases.MaxID = st.Leases.MaxID
	for typ, steps := range st.Deploys {
		out.Deploys[typ] = append([]DeployStep(nil), steps...)
	}
	if st.History != nil {
		out.History = st.History.Clone()
	}
	for id, b := range st.CAS {
		out.CAS[id] = b
	}
	return out
}
