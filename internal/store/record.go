package store

import (
	"encoding/json"
	"fmt"
	"time"

	"glare/internal/lease"
)

// Registry names the store journals under. The store itself is agnostic to
// what a registry holds; these constants keep the RDM wiring and the
// recovery path agreeing on the names.
const (
	RegATR = "atr"
	RegADR = "adr"
)

// Op is the kind of one journaled mutation.
type Op uint8

const (
	// OpPut upserts a registry entry (full property document).
	OpPut Op = iota + 1
	// OpDelete removes a registry entry.
	OpDelete
	// OpLeaseAcquire installs a lease ticket.
	OpLeaseAcquire
	// OpLeaseRelease removes a lease ticket by ID.
	OpLeaseRelease
	// OpLeaseLimit sets a deployment's shared-lease concurrency bound.
	OpLeaseLimit
	// opSnapSeal terminates a snapshot file; a snapshot without its seal
	// was torn mid-write and is ignored during recovery.
	opSnapSeal
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpLeaseAcquire:
		return "lease-acquire"
	case OpLeaseRelease:
		return "lease-release"
	case OpLeaseLimit:
		return "lease-limit"
	case opSnapSeal:
		return "snap-seal"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one journaled mutation. Registry puts carry the whole property
// document: registries mutate documents in place, so re-journaling the
// full document after each mutation makes every record self-contained and
// replay a pure last-write-wins fold — no partial-update merge logic can
// go wrong during recovery.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  Op     `json:"op"`
	// Reg is the registry name (RegATR, RegADR) for put/delete records;
	// empty for lease records.
	Reg string `json:"reg,omitempty"`
	// Key is the resource key (put/delete) or the deployment name
	// (lease-limit).
	Key string `json:"key,omitempty"`
	// Doc is the XML text of the resource property document (put only).
	Doc string `json:"doc,omitempty"`
	// LUT is the resource's LastUpdateTime; preserved across recovery so
	// cache revival and anti-entropy keep working after a restart.
	LUT time.Time `json:"lut,omitempty"`
	// Term is the resource's scheduled termination time (zero = never).
	Term time.Time `json:"term,omitempty"`
	// Ticket is the acquired lease (lease-acquire only).
	Ticket *lease.Ticket `json:"ticket,omitempty"`
	// ID is the released ticket ID (lease-release only).
	ID uint64 `json:"id,omitempty"`
	// Limit is the shared-lease bound (lease-limit only).
	Limit int `json:"limit,omitempty"`
}

func (r Record) encode() ([]byte, error) { return json.Marshal(r) }

func decodeRecord(b []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return Record{}, err
	}
	return r, nil
}

// Entry is one live registry entry in the recovered state.
type Entry struct {
	Doc  string
	LUT  time.Time
	Term time.Time
}

// LeaseState is the recovered reservation-service state.
type LeaseState struct {
	// Tickets holds every journaled, unreleased ticket — including ones
	// that have expired by recovery time; the lease service drops those
	// during Restore so they are never resurrected.
	Tickets map[uint64]lease.Ticket
	// Limits holds per-deployment shared-lease bounds.
	Limits map[string]int
	// MaxID is the highest ticket ID ever journaled, so recovered services
	// never reissue an ID a client may still hold.
	MaxID uint64
}

// State is the materialized view of the journal: what a site's registries
// and lease service looked like at the last appended record.
type State struct {
	Registries map[string]map[string]Entry
	Leases     LeaseState
}

func newState() *State {
	return &State{
		Registries: map[string]map[string]Entry{},
		Leases: LeaseState{
			Tickets: map[uint64]lease.Ticket{},
			Limits:  map[string]int{},
		},
	}
}

// apply folds one record into the state.
func (st *State) apply(r Record) {
	switch r.Op {
	case OpPut:
		reg := st.Registries[r.Reg]
		if reg == nil {
			reg = map[string]Entry{}
			st.Registries[r.Reg] = reg
		}
		reg[r.Key] = Entry{Doc: r.Doc, LUT: r.LUT, Term: r.Term}
	case OpDelete:
		delete(st.Registries[r.Reg], r.Key)
	case OpLeaseAcquire:
		if r.Ticket != nil {
			st.Leases.Tickets[r.Ticket.ID] = *r.Ticket
			if r.Ticket.ID > st.Leases.MaxID {
				st.Leases.MaxID = r.Ticket.ID
			}
		}
	case OpLeaseRelease:
		delete(st.Leases.Tickets, r.ID)
	case OpLeaseLimit:
		if r.Limit <= 0 {
			delete(st.Leases.Limits, r.Key)
		} else {
			st.Leases.Limits[r.Key] = r.Limit
		}
	}
}

// liveRecords counts the records a snapshot of this state would hold.
func (st *State) liveRecords() int {
	n := 0
	for _, reg := range st.Registries {
		n += len(reg)
	}
	n += len(st.Leases.Tickets) + len(st.Leases.Limits)
	return n
}

// records flattens the state back into self-contained records, the form
// snapshots are written in. Iteration order is not significant: replaying
// a snapshot is a fold over independent keys.
func (st *State) records() []Record {
	out := make([]Record, 0, st.liveRecords())
	for reg, entries := range st.Registries {
		for key, e := range entries {
			out = append(out, Record{Op: OpPut, Reg: reg, Key: key, Doc: e.Doc, LUT: e.LUT, Term: e.Term})
		}
	}
	for _, t := range st.Leases.Tickets {
		t := t
		out = append(out, Record{Op: OpLeaseAcquire, Ticket: &t})
	}
	for dep, max := range st.Leases.Limits {
		out = append(out, Record{Op: OpLeaseLimit, Key: dep, Limit: max})
	}
	return out
}

// clone deep-copies the state so callers can consume it without racing
// the store's own apply path.
func (st *State) clone() *State {
	out := newState()
	for reg, entries := range st.Registries {
		m := make(map[string]Entry, len(entries))
		for k, e := range entries {
			m[k] = e
		}
		out.Registries[reg] = m
	}
	for id, t := range st.Leases.Tickets {
		out.Leases.Tickets[id] = t
	}
	for dep, max := range st.Leases.Limits {
		out.Leases.Limits[dep] = max
	}
	out.Leases.MaxID = st.Leases.MaxID
	return out
}
