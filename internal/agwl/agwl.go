// Package agwl implements a compact Abstract Grid Workflow Language: the
// workflow representation the paper's motivation revolves around.
//
// "Grid workflow applications require the composition of a set of
// application (software) components ... which execute on the Grid in a
// well-defined order to accomplish a specific goal." (paper §1) The
// language referenced there is AGWL [19]; this package provides the subset
// GLARE interacts with: activities identified by ACTIVITY TYPE (never by
// executable or site), data ports, and data-flow edges. The enactment
// engine (package enactor) maps each activity to a concrete deployment at
// run time through GLARE.
//
// XML form:
//
//	<Workflow name="povray">
//	  <Activity name="render" type="ImageConversion">
//	    <Input name="scene" source="user:scene.pov"/>
//	    <Output name="image"/>
//	    <Arg>quality=high</Arg>
//	  </Activity>
//	  <Activity name="view" type="Visualization">
//	    <Input name="image" source="render:image"/>
//	  </Activity>
//	</Workflow>
//
// An input's source is either "user:<file>" (staged in by the submitter)
// or "<activity>:<output>" (a data-flow edge).
package agwl

import (
	"fmt"
	"sort"
	"strings"

	"glare/internal/xmlutil"
)

// Port is one named input or output of an activity.
type Port struct {
	// Name identifies the port within its activity.
	Name string
	// Source is set on inputs: "user:<path>" or "<activity>:<output>".
	Source string
}

// SourceActivity splits a data-flow source; ok is false for user inputs.
func (p Port) SourceActivity() (activity, output string, ok bool) {
	i := strings.IndexByte(p.Source, ':')
	if i <= 0 {
		return "", "", false
	}
	if p.Source[:i] == "user" {
		return "", "", false
	}
	return p.Source[:i], p.Source[i+1:], true
}

// Activity is one workflow node, referencing an activity TYPE only.
type Activity struct {
	// Name is unique within the workflow.
	Name string
	// Type is the GLARE activity type (abstract or concrete).
	Type string
	// Inputs and Outputs are the data ports.
	Inputs  []Port
	Outputs []Port
	// Args is the command line handed to the instantiated deployment.
	Args string
}

// Workflow is a DAG of activities connected by data-flow edges.
type Workflow struct {
	Name       string
	Activities []Activity
}

// Validate checks the structural invariants: unique names, known sources,
// acyclicity.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("agwl: workflow without name")
	}
	if len(w.Activities) == 0 {
		return fmt.Errorf("agwl: workflow %q has no activities", w.Name)
	}
	byName := map[string]*Activity{}
	for i := range w.Activities {
		a := &w.Activities[i]
		if a.Name == "" {
			return fmt.Errorf("agwl: activity without name")
		}
		if a.Type == "" {
			return fmt.Errorf("agwl: activity %q has no type", a.Name)
		}
		if _, dup := byName[a.Name]; dup {
			return fmt.Errorf("agwl: duplicate activity %q", a.Name)
		}
		byName[a.Name] = a
	}
	for _, a := range w.Activities {
		seen := map[string]bool{}
		for _, in := range a.Inputs {
			if in.Name == "" {
				return fmt.Errorf("agwl: %s: input without name", a.Name)
			}
			if seen[in.Name] {
				return fmt.Errorf("agwl: %s: duplicate input %q", a.Name, in.Name)
			}
			seen[in.Name] = true
			src, out, ok := in.SourceActivity()
			if !ok {
				if !strings.HasPrefix(in.Source, "user:") {
					return fmt.Errorf("agwl: %s.%s: source %q is neither user: nor activity:output",
						a.Name, in.Name, in.Source)
				}
				continue
			}
			producer, known := byName[src]
			if !known {
				return fmt.Errorf("agwl: %s.%s: unknown source activity %q", a.Name, in.Name, src)
			}
			found := false
			for _, o := range producer.Outputs {
				if o.Name == out {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("agwl: %s.%s: activity %q has no output %q",
					a.Name, in.Name, src, out)
			}
		}
	}
	if _, err := w.Order(); err != nil {
		return err
	}
	return nil
}

// Dependencies returns the names of activities a depends on (via inputs).
func (a *Activity) Dependencies() []string {
	seen := map[string]bool{}
	var out []string
	for _, in := range a.Inputs {
		if src, _, ok := in.SourceActivity(); ok && !seen[src] {
			seen[src] = true
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

// Order returns the activities in a deterministic topological order.
func (w *Workflow) Order() ([]*Activity, error) {
	index := map[string]int{}
	for i := range w.Activities {
		index[w.Activities[i].Name] = i
	}
	indeg := make([]int, len(w.Activities))
	succ := make([][]int, len(w.Activities))
	for i := range w.Activities {
		for _, dep := range w.Activities[i].Dependencies() {
			j, ok := index[dep]
			if !ok {
				return nil, fmt.Errorf("agwl: %s depends on unknown %q", w.Activities[i].Name, dep)
			}
			succ[j] = append(succ[j], i)
			indeg[i]++
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	var out []*Activity
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		out = append(out, &w.Activities[i])
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(out) != len(w.Activities) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, w.Activities[i].Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("agwl: cycle among activities %v", stuck)
	}
	return out, nil
}

// Stages groups the topological order into parallel stages: every
// activity in stage k depends only on activities in stages < k. The
// enactment engine runs a stage's activities concurrently.
func (w *Workflow) Stages() ([][]*Activity, error) {
	if _, err := w.Order(); err != nil {
		return nil, err
	}
	level := map[string]int{}
	ordered, _ := w.Order()
	maxLevel := 0
	for _, a := range ordered {
		l := 0
		for _, dep := range a.Dependencies() {
			if level[dep]+1 > l {
				l = level[dep] + 1
			}
		}
		level[a.Name] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	stages := make([][]*Activity, maxLevel+1)
	for _, a := range ordered {
		l := level[a.Name]
		stages[l] = append(stages[l], a)
	}
	return stages, nil
}

// Types returns the distinct activity types the workflow uses, in first-
// use order (the look-ahead scheduler pre-resolves these).
func (w *Workflow) Types() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range w.Activities {
		if !seen[a.Type] {
			seen[a.Type] = true
			out = append(out, a.Type)
		}
	}
	return out
}

// ToXML renders the workflow document.
func (w *Workflow) ToXML() *xmlutil.Node {
	n := xmlutil.NewNode("Workflow")
	n.SetAttr("name", w.Name)
	for _, a := range w.Activities {
		an := n.Elem("Activity")
		an.SetAttr("name", a.Name)
		an.SetAttr("type", a.Type)
		for _, in := range a.Inputs {
			pn := an.Elem("Input")
			pn.SetAttr("name", in.Name)
			pn.SetAttr("source", in.Source)
		}
		for _, out := range a.Outputs {
			pn := an.Elem("Output")
			pn.SetAttr("name", out.Name)
		}
		if a.Args != "" {
			an.Elem("Arg", a.Args)
		}
	}
	return n
}

// FromXML parses a workflow document.
func FromXML(n *xmlutil.Node) (*Workflow, error) {
	if n == nil || n.Name != "Workflow" {
		return nil, fmt.Errorf("agwl: expected <Workflow>")
	}
	w := &Workflow{Name: n.AttrOr("name", "")}
	for _, an := range n.All("Activity") {
		a := Activity{
			Name: an.AttrOr("name", ""),
			Type: an.AttrOr("type", ""),
			Args: an.ChildText("Arg"),
		}
		for _, pn := range an.All("Input") {
			a.Inputs = append(a.Inputs, Port{
				Name: pn.AttrOr("name", ""), Source: pn.AttrOr("source", ""),
			})
		}
		for _, pn := range an.All("Output") {
			a.Outputs = append(a.Outputs, Port{Name: pn.AttrOr("name", "")})
		}
		w.Activities = append(w.Activities, a)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ParseString parses a workflow from XML text.
func ParseString(s string) (*Workflow, error) {
	n, err := xmlutil.ParseString(s)
	if err != nil {
		return nil, fmt.Errorf("agwl: %w", err)
	}
	return FromXML(n)
}
