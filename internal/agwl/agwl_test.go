package agwl

import (
	"strings"
	"testing"
	"testing/quick"
)

const povrayWF = `
<Workflow name="povray">
  <Activity name="render" type="ImageConversion">
    <Input name="scene" source="user:scene.pov"/>
    <Output name="image"/>
    <Arg>quality=high</Arg>
  </Activity>
  <Activity name="view" type="Visualization">
    <Input name="image" source="render:image"/>
  </Activity>
</Workflow>`

func TestParseAndRoundTrip(t *testing.T) {
	w, err := ParseString(povrayWF)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "povray" || len(w.Activities) != 2 {
		t.Fatalf("parsed %+v", w)
	}
	if w.Activities[0].Args != "quality=high" {
		t.Fatalf("args = %q", w.Activities[0].Args)
	}
	again, err := FromXML(w.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != w.Name || len(again.Activities) != len(w.Activities) {
		t.Fatal("round trip lost structure")
	}
	if again.Activities[1].Inputs[0].Source != "render:image" {
		t.Fatal("edge lost")
	}
}

func TestSourceActivity(t *testing.T) {
	cases := []struct {
		src      string
		act, out string
		ok       bool
	}{
		{"render:image", "render", "image", true},
		{"user:scene.pov", "", "", false},
		{"noedge", "", "", false},
		{":broken", "", "", false},
	}
	for _, c := range cases {
		act, out, ok := Port{Source: c.src}.SourceActivity()
		if act != c.act || out != c.out || ok != c.ok {
			t.Errorf("SourceActivity(%q) = %q,%q,%v", c.src, act, out, ok)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"no name":         `<Workflow><Activity name="a" type="T"/></Workflow>`,
		"no activities":   `<Workflow name="w"/>`,
		"activity noname": `<Workflow name="w"><Activity type="T"/></Workflow>`,
		"activity notype": `<Workflow name="w"><Activity name="a"/></Workflow>`,
		"duplicate":       `<Workflow name="w"><Activity name="a" type="T"/><Activity name="a" type="T"/></Workflow>`,
		"bad source": `<Workflow name="w"><Activity name="a" type="T">
		  <Input name="x" source="nowhere"/></Activity></Workflow>`,
		"unknown producer": `<Workflow name="w"><Activity name="a" type="T">
		  <Input name="x" source="ghost:out"/></Activity></Workflow>`,
		"missing output": `<Workflow name="w">
		  <Activity name="p" type="T"><Output name="real"/></Activity>
		  <Activity name="a" type="T"><Input name="x" source="p:fake"/></Activity></Workflow>`,
		"duplicate input": `<Workflow name="w"><Activity name="a" type="T">
		  <Input name="x" source="user:f"/><Input name="x" source="user:g"/></Activity></Workflow>`,
	}
	for label, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	src := `<Workflow name="w">
	  <Activity name="a" type="T"><Input name="x" source="b:out"/><Output name="out"/></Activity>
	  <Activity name="b" type="T"><Input name="x" source="a:out"/><Output name="out"/></Activity>
	</Workflow>`
	if _, err := ParseString(src); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestOrderAndStages(t *testing.T) {
	// Diamond: a -> (b, c) -> d.
	src := `<Workflow name="diamond">
	  <Activity name="a" type="T"><Output name="o"/></Activity>
	  <Activity name="b" type="T"><Input name="i" source="a:o"/><Output name="o"/></Activity>
	  <Activity name="c" type="T"><Input name="i" source="a:o"/><Output name="o"/></Activity>
	  <Activity name="d" type="T"><Input name="x" source="b:o"/><Input name="y" source="c:o"/></Activity>
	</Workflow>`
	w, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	order, err := w.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, a := range order {
		pos[a.Name] = i
	}
	if pos["a"] != 0 || pos["d"] != 3 {
		t.Fatalf("order = %v", pos)
	}
	stages, err := w.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("stages = %d", len(stages))
	}
	if len(stages[1]) != 2 { // b and c run in parallel
		t.Fatalf("middle stage = %d activities", len(stages[1]))
	}
}

func TestTypes(t *testing.T) {
	w, _ := ParseString(povrayWF)
	types := w.Types()
	if len(types) != 2 || types[0] != "ImageConversion" || types[1] != "Visualization" {
		t.Fatalf("types = %v", types)
	}
}

// Property: for any linear chain of activities, every stage has exactly
// one member and the order equals the chain order.
func TestQuickLinearChains(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%20) + 1
		w := &Workflow{Name: "chain"}
		for i := 0; i < k; i++ {
			a := Activity{Name: actName(i), Type: "T", Outputs: []Port{{Name: "o"}}}
			if i > 0 {
				a.Inputs = []Port{{Name: "i", Source: actName(i-1) + ":o"}}
			}
			w.Activities = append(w.Activities, a)
		}
		if err := w.Validate(); err != nil {
			return false
		}
		stages, err := w.Stages()
		if err != nil || len(stages) != k {
			return false
		}
		for i, st := range stages {
			if len(st) != 1 || st[0].Name != actName(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func actName(i int) string {
	return "act" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// Property: Stages is consistent with Dependencies — every dependency of
// a stage-k activity appears in an earlier stage.
func TestQuickStageConsistency(t *testing.T) {
	// Random DAG: activity i may depend on a subset of earlier activities.
	f := func(edges []uint16) bool {
		const n = 8
		w := &Workflow{Name: "dag"}
		for i := 0; i < n; i++ {
			w.Activities = append(w.Activities, Activity{
				Name: actName(i), Type: "T", Outputs: []Port{{Name: "o"}},
			})
		}
		for _, e := range edges {
			from := int(e>>8) % n
			to := int(e&0xff) % n
			if from >= to {
				continue // keep it a DAG
			}
			a := &w.Activities[to]
			src := actName(from) + ":o"
			dup := false
			for _, in := range a.Inputs {
				if in.Source == src {
					dup = true
				}
			}
			if !dup {
				a.Inputs = append(a.Inputs, Port{
					Name: "i" + actName(from), Source: src,
				})
			}
		}
		if err := w.Validate(); err != nil {
			return false
		}
		stages, err := w.Stages()
		if err != nil {
			return false
		}
		level := map[string]int{}
		for l, st := range stages {
			for _, a := range st {
				level[a.Name] = l
			}
		}
		for _, a := range w.Activities {
			for _, dep := range a.Dependencies() {
				if level[dep] >= level[a.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
