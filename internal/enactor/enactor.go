// Package enactor implements a workflow enactment engine on top of GLARE:
// the component the paper calls "the scheduler [or] enactment engine"
// (referencing DEE [13]). It takes an AGWL workflow composed purely of
// activity types, resolves every activity to a concrete deployment
// through the local GLARE service, stages data between sites with
// GridFTP, runs activities as GRAM jobs (or service invocations), and
// retries on an alternative deployment when one fails.
//
// It also implements the look-ahead optimization the paper proposes: "A
// smart scheduler can reduce overhead of on-demand deployment by
// providing intelligent look-ahead scheduling" — before execution starts,
// the engine resolves (and thereby on-demand-installs) every activity
// type the workflow will need, concurrently with the first stages.
package enactor

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"glare/internal/activity"
	"glare/internal/agwl"
	"glare/internal/gridftp"
	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/site"
)

// Selector picks one deployment from the candidates GLARE returned. The
// default prefers executables and, among those, the deployment with the
// best (lowest) last execution time.
type Selector func(cands []*activity.Deployment) *activity.Deployment

// DefaultSelector implements the policy above.
func DefaultSelector(cands []*activity.Deployment) *activity.Deployment {
	if len(cands) == 0 {
		return nil
	}
	best := cands[0]
	score := func(d *activity.Deployment) (int, time.Duration) {
		kindRank := 0
		if d.Kind == activity.KindService {
			kindRank = 1
		}
		t := d.Metrics.LastExecutionTime
		if t == 0 {
			t = time.Hour // unknown: worst
		}
		return kindRank, t
	}
	for _, c := range cands[1:] {
		ck, ct := score(c)
		bk, bt := score(best)
		if ck < bk || (ck == bk && ct < bt) {
			best = c
		}
	}
	return best
}

// Engine runs workflows against a set of GLARE sites.
type Engine struct {
	// Home is the submitting user's local GLARE service — the only
	// service the engine asks for resolution.
	Home *rdm.Service
	// Sites maps site names to their GLARE services, used to instantiate
	// deployments on their home sites and to stage data.
	Sites map[string]*rdm.Service
	// FTP moves data between sites.
	FTP *gridftp.Client
	// Clock times the run (use simclock.NewScaled in experiments so that
	// concurrent work overlaps).
	Clock simclock.Clock
	// LookAhead pre-resolves (and installs) every workflow activity type
	// before and during execution.
	LookAhead bool
	// Select picks among candidate deployments (DefaultSelector if nil).
	Select Selector
	// Client labels the engine's lease/instantiation identity.
	Client string
}

// Placement records where one activity ran.
type Placement struct {
	Activity   string
	Deployment string
	Site       string
	Kind       activity.DeploymentKind
	Elapsed    time.Duration
	Retried    bool
}

// Report summarizes one workflow run.
type Report struct {
	Workflow   string
	Placements []Placement
	Makespan   time.Duration
	// DataMoves counts inter-site stagings performed.
	DataMoves int
}

// dataLoc records where an activity's output lives.
type dataLoc struct {
	site string
	path string
}

// Run enacts the workflow to completion or first unrecoverable failure.
func (e *Engine) Run(w *agwl.Workflow) (*Report, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if e.Home == nil || e.Clock == nil {
		return nil, fmt.Errorf("enactor: engine needs Home and Clock")
	}
	sel := e.Select
	if sel == nil {
		sel = DefaultSelector
	}
	client := e.Client
	if client == "" {
		client = "enactor"
	}
	stages, err := w.Stages()
	if err != nil {
		return nil, err
	}

	rep := &Report{Workflow: w.Name}
	start := e.Clock.Now()

	// Look-ahead: resolve every type concurrently, triggering on-demand
	// installation of everything the workflow needs while early stages
	// already execute.
	var lookahead sync.WaitGroup
	if e.LookAhead {
		for _, tn := range w.Types() {
			lookahead.Add(1)
			go func(tn string) {
				defer lookahead.Done()
				_, _ = e.Home.GetDeployments(tn, rdm.MethodExpect, true)
			}(tn)
		}
	}

	var mu sync.Mutex
	data := map[string]dataLoc{} // "activity:output" -> location
	for _, stage := range stages {
		// Activities in one stage only consume data from earlier stages,
		// so they read a frozen snapshot while their own outputs merge
		// into the live map afterwards.
		snapshot := make(map[string]dataLoc, len(data))
		for k, v := range data {
			snapshot[k] = v
		}
		var wg sync.WaitGroup
		errs := make(chan error, len(stage))
		for _, a := range stage {
			wg.Add(1)
			go func(a *agwl.Activity) {
				defer wg.Done()
				pl, moves, out, err := e.runActivity(w, a, snapshot, sel, client)
				if err != nil {
					errs <- fmt.Errorf("enactor: %s: %w", a.Name, err)
					return
				}
				mu.Lock()
				rep.Placements = append(rep.Placements, pl)
				rep.DataMoves += moves
				for k, v := range out {
					data[k] = v
				}
				mu.Unlock()
			}(a)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			lookahead.Wait()
			return rep, err
		}
	}
	lookahead.Wait()
	rep.Makespan = e.Clock.Now().Sub(start)
	sort.Slice(rep.Placements, func(i, j int) bool {
		return rep.Placements[i].Activity < rep.Placements[j].Activity
	})
	return rep, nil
}

// runActivity resolves, stages, and executes one activity, retrying once
// on an alternative deployment ("if a deployment fails on one site, it
// can be moved to another site").
func (e *Engine) runActivity(w *agwl.Workflow, a *agwl.Activity,
	data map[string]dataLoc, sel Selector, client string,
) (Placement, int, map[string]dataLoc, error) {
	cands, err := e.Home.GetDeployments(a.Type, rdm.MethodExpect, true)
	if err != nil {
		return Placement{}, 0, nil, err
	}
	tried := map[string]bool{}
	var lastErr error
	retried := false
	for attempt := 0; attempt < 2 && len(cands) > 0; attempt++ {
		remaining := cands[:0:0]
		for _, c := range cands {
			if !tried[c.Name] {
				remaining = append(remaining, c)
			}
		}
		if len(remaining) == 0 {
			break
		}
		d := sel(remaining)
		tried[d.Name] = true
		pl, moves, out, err := e.execute(w, a, d, data, client)
		if err == nil {
			pl.Retried = retried
			return pl, moves, out, nil
		}
		lastErr = err
		retried = true
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no deployment of type %q", a.Type)
	}
	return Placement{}, 0, nil, lastErr
}

func (e *Engine) execute(w *agwl.Workflow, a *agwl.Activity,
	d *activity.Deployment, data map[string]dataLoc, client string,
) (Placement, int, map[string]dataLoc, error) {
	owner := e.Sites[d.Site]
	if owner == nil {
		return Placement{}, 0, nil, fmt.Errorf("deployment %q on unknown site %q", d.Name, d.Site)
	}
	target := owner.Site()
	workDir := path.Join("/scratch", w.Name, a.Name)
	target.FS.Mkdir(workDir)

	// Stage inputs.
	moves := 0
	for _, in := range a.Inputs {
		dst := path.Join(workDir, in.Name)
		if src, out, ok := in.SourceActivity(); ok {
			loc, found := data[src+":"+out]
			if !found {
				return Placement{}, 0, nil, fmt.Errorf("input %s: data %s:%s not produced yet", in.Name, src, out)
			}
			if loc.site == d.Site {
				// Already local: cheap rename/copy.
				if f := target.FS.Stat(loc.path); f != nil {
					target.FS.Write(dst, f.Kind, f.Size, f.MD5, f.Artifact)
				}
				continue
			}
			srcSvc := e.Sites[loc.site]
			if srcSvc == nil {
				return Placement{}, 0, nil, fmt.Errorf("input %s: unknown source site %q", in.Name, loc.site)
			}
			if e.FTP == nil {
				return Placement{}, 0, nil, fmt.Errorf("input %s: no transfer client", in.Name)
			}
			if err := e.FTP.ThirdParty(srcSvc.Site(), loc.path, target, dst); err != nil {
				return Placement{}, 0, nil, fmt.Errorf("staging %s: %w", in.Name, err)
			}
			moves++
			continue
		}
		// User input: materialize on the target site.
		userFile := strings.TrimPrefix(in.Source, "user:")
		target.FS.Write(dst, site.KindFile, 64<<10, "", "")
		_ = userFile
	}

	// Instantiate on the deployment's own site.
	started := e.Clock.Now()
	if err := owner.Instantiate(d.Name, client, 0, a.Args); err != nil {
		return Placement{}, 0, nil, err
	}
	elapsed := e.Clock.Now().Sub(started)

	// Record outputs.
	out := map[string]dataLoc{}
	for _, o := range a.Outputs {
		p := path.Join(workDir, o.Name)
		target.FS.Write(p, site.KindFile, 256<<10, "", "")
		out[a.Name+":"+o.Name] = dataLoc{site: d.Site, path: p}
	}
	return Placement{
		Activity: a.Name, Deployment: d.Name, Site: d.Site,
		Kind: d.Kind, Elapsed: elapsed,
	}, moves, out, nil
}
