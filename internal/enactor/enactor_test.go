package enactor

import (
	"strings"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/agwl"
	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/vo"
)

// fixture builds a VO plus an engine homed at site 0.
func fixture(t *testing.T, sites int, lookAhead bool) (*vo.VO, *Engine) {
	t.Helper()
	v, err := vo.Build(vo.Options{Sites: sites, GroupSize: sites})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	if err := v.ElectSuperPeers(); err != nil {
		t.Fatal(err)
	}
	if err := v.RegisterImagingStack(0); err != nil {
		t.Fatal(err)
	}
	siteMap := map[string]*rdm.Service{}
	for _, n := range v.Nodes {
		siteMap[n.Info.Name] = n.RDM
	}
	e := &Engine{
		Home:      v.Nodes[0].RDM,
		Sites:     siteMap,
		FTP:       v.Nodes[0].RDM.FTP,
		Clock:     v.Clock,
		LookAhead: lookAhead,
		Client:    "test",
	}
	return v, e
}

func povrayWorkflow(t *testing.T) *agwl.Workflow {
	t.Helper()
	w, err := agwl.ParseString(`
<Workflow name="povray">
  <Activity name="render" type="ImageConversion">
    <Input name="scene" source="user:scene.pov"/>
    <Output name="image"/>
  </Activity>
  <Activity name="view" type="POVray">
    <Input name="image" source="render:image"/>
  </Activity>
</Workflow>`)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunSimpleWorkflow(t *testing.T) {
	_, e := fixture(t, 2, false)
	rep, err := e.Run(povrayWorkflow(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Placements) != 2 {
		t.Fatalf("placements = %+v", rep.Placements)
	}
	for _, p := range rep.Placements {
		if p.Site == "" || p.Deployment == "" {
			t.Fatalf("incomplete placement %+v", p)
		}
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	// The deployment metrics were recorded by instantiation.
	home := e.Home
	found := false
	for _, d := range home.ADR.All() {
		if d.Metrics.Invocations > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no invocation metrics recorded")
	}
}

func TestDiamondWorkflowStagesDataAcrossActivities(t *testing.T) {
	_, e := fixture(t, 2, false)
	w, err := agwl.ParseString(`
<Workflow name="diamond">
  <Activity name="a" type="JPOVray"><Output name="o"/></Activity>
  <Activity name="b" type="JPOVray"><Input name="i" source="a:o"/><Output name="o"/></Activity>
  <Activity name="c" type="JPOVray"><Input name="i" source="a:o"/><Output name="o"/></Activity>
  <Activity name="d" type="JPOVray"><Input name="x" source="b:o"/><Input name="y" source="c:o"/></Activity>
</Workflow>`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Placements) != 4 {
		t.Fatalf("placements = %d", len(rep.Placements))
	}
	// All activities used the same deployment site here, so no inter-site
	// moves were needed; outputs must exist on that site.
	siteSvc := e.Sites[rep.Placements[0].Site]
	if !siteSvc.Site().FS.Exists("/scratch/diamond/a/o") {
		t.Fatal("output not materialized")
	}
}

func TestWorkflowFailsOnUnknownType(t *testing.T) {
	_, e := fixture(t, 1, false)
	w, err := agwl.ParseString(`
<Workflow name="broken">
  <Activity name="x" type="NoSuchType"/>
</Workflow>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(w); err == nil || !strings.Contains(err.Error(), "NoSuchType") {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryOnFailedDeployment(t *testing.T) {
	v, e := fixture(t, 1, false)
	// Deploy JPOVray, then sabotage the preferred executable so the first
	// instantiation fails; the engine must retry with the WS deployment.
	if _, err := e.Home.GetDeployments("JPOVray", rdm.MethodExpect, true); err != nil {
		t.Fatal(err)
	}
	d, ok := e.Home.ADR.Get("jpovray")
	if !ok {
		t.Fatal("jpovray missing")
	}
	v.Nodes[0].Site.FS.Remove(d.Path) // the binary vanishes; registry still lists it
	w, err := agwl.ParseString(`
<Workflow name="retry">
  <Activity name="r" type="JPOVray"/>
</Workflow>`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(w)
	if err != nil {
		t.Fatalf("run with retry failed: %v", err)
	}
	p := rep.Placements[0]
	if !p.Retried {
		t.Fatal("retry not recorded")
	}
	if p.Deployment != "WS-JPOVray" {
		t.Fatalf("fallback deployment = %s", p.Deployment)
	}
}

func TestDefaultSelector(t *testing.T) {
	mk := func(name string, kind activity.DeploymentKind, exec time.Duration) *activity.Deployment {
		return &activity.Deployment{
			Name: name, Type: "T", Kind: kind, Path: "/x", Address: "http://x",
			Metrics: activity.Metrics{LastExecutionTime: exec},
		}
	}
	if DefaultSelector(nil) != nil {
		t.Fatal("empty candidates must yield nil")
	}
	// Executables beat services.
	got := DefaultSelector([]*activity.Deployment{
		mk("svc", activity.KindService, time.Second),
		mk("exe", activity.KindExecutable, 2*time.Second),
	})
	if got.Name != "exe" {
		t.Fatalf("selector chose %s", got.Name)
	}
	// Among executables, the fastest last execution wins; unknown is worst.
	got = DefaultSelector([]*activity.Deployment{
		mk("slow", activity.KindExecutable, 3*time.Second),
		mk("fast", activity.KindExecutable, time.Second),
		mk("unknown", activity.KindExecutable, 0),
	})
	if got.Name != "fast" {
		t.Fatalf("selector chose %s", got.Name)
	}
}

func TestLookAheadReducesMakespan(t *testing.T) {
	// Neither stage's type is deployed yet: without look-ahead the two
	// installations serialize (stage one's, then stage two's); with
	// look-ahead both start at submission time and overlap, so the
	// makespan approaches the longer of the two instead of their sum.
	// The scaled clock (1000x) preserves real concurrency.
	run := func(lookAhead bool) time.Duration {
		clock := simclock.NewScaled(1000)
		v, err := vo.Build(vo.Options{Sites: 1, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		if err := v.RegisterImagingStack(0); err != nil {
			t.Fatal(err)
		}
		if err := v.RegisterEvaluationApps(0); err != nil {
			t.Fatal(err)
		}
		e := &Engine{
			Home:      v.Nodes[0].RDM,
			Sites:     map[string]*rdm.Service{v.Nodes[0].Info.Name: v.Nodes[0].RDM},
			FTP:       v.Nodes[0].RDM.FTP,
			Clock:     clock,
			LookAhead: lookAhead,
		}
		w, err := agwl.ParseString(`
<Workflow name="two-stage">
  <Activity name="one" type="JPOVray"><Output name="o"/></Activity>
  <Activity name="two" type="Wien2k"><Input name="i" source="one:o"/></Activity>
</Workflow>`)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	with := run(true)
	without := run(false)
	// Demand a clear win, not a scheduling accident: the overlapped run
	// must be at least 20% faster.
	if float64(with) >= 0.8*float64(without) {
		t.Fatalf("look-ahead makespan %v must clearly beat %v", with, without)
	}
}
