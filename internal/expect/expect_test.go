package expect

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

func testSite() (*site.Site, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	s := site.New(site.Attributes{
		Name: "agrid1", Platform: "Intel", OS: "Linux", Arch: "32bit",
	}, v, site.StandardUniverse())
	return s, v
}

func stage(s *site.Site, artifact, dst string) {
	a, ok := s.Repo.ByName(artifact)
	if !ok {
		panic("no artifact " + artifact)
	}
	s.FS.Write(dst, site.KindFile, a.SizeBytes, a.MD5(), a.Name)
}

func TestSessionLoginCost(t *testing.T) {
	s, v := testSite()
	t0 := v.Now()
	Open(s, v, 0)
	if got := v.Now().Sub(t0); got != DefaultLoginCost {
		t.Fatalf("login cost = %v, want %v", got, DefaultLoginCost)
	}
	t0 = v.Now()
	Open(s, v, 500*time.Millisecond)
	if got := v.Now().Sub(t0); got != 500*time.Millisecond {
		t.Fatalf("custom login cost = %v", got)
	}
}

func TestInteractiveInstallWithScript(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	sh := sess.Shell()
	s.FS.Mkdir("/tmp/p")
	stage(s, "POVray", "/tmp/p/povray.tgz")
	if err := sh.Chdir("/tmp/p"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("tar xvfz povray.tgz"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Chdir("povray-3.6.1"); err != nil {
		t.Fatal(err)
	}
	// The provider's send/expect patterns from the deploy-file.
	script := Script{
		{Expect: "Accept POV-Ray license", Send: "y"},
		{Expect: "User type", Send: "personal"},
		{Expect: "Install path", Send: ""},
	}
	out, err := sess.Interact("./configure --prefix=/opt/pov", script)
	if err != nil {
		t.Fatalf("interact: %v (saw %v)", err, out)
	}
	found := false
	for _, l := range out {
		if strings.Contains(l, "configured POVray") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no configure confirmation in %v", out)
	}
}

func TestWrongAnswerFailsInstall(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	sh := sess.Shell()
	s.FS.Mkdir("/tmp/p")
	stage(s, "POVray", "/tmp/p/povray.tgz")
	sh.Chdir("/tmp/p")
	sess.Exec("tar xvfz povray.tgz")
	sh.Chdir("povray-3.6.1")
	script := Script{
		{Expect: "Accept POV-Ray license", Send: "n"}, // refuse
	}
	if _, err := sess.Interact("./configure", script); err == nil {
		t.Fatal("refusing the license must fail the install")
	}
}

func TestTimeoutWhenPatternNeverAppears(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	sess.engine.DefaultTimeout = 50 * time.Millisecond
	script := Script{{Expect: "THIS NEVER APPEARS"}}
	_, err := sess.Interact("echo hello", script)
	var me *MatchError
	if err == nil {
		t.Fatal("expected match error")
	}
	if !strings.Contains(err.Error(), "NEVER APPEARS") && !strings.Contains(err.Error(), "exited") {
		t.Fatalf("err = %v", err)
	}
	_ = me
}

func TestRegexPattern(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	script := Script{{Expect: `^hel+o wor.d$`, Regex: true}}
	if _, err := sess.Interact("echo hello world", script); err != nil {
		t.Fatalf("regex match failed: %v", err)
	}
	bad := Script{{Expect: `([`, Regex: true}}
	if _, err := sess.Interact("echo x", bad); err == nil {
		t.Fatal("bad regex must error")
	}
}

func TestExecFailurePropagates(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	if _, err := sess.Exec("nonexistent-command"); err == nil {
		t.Fatal("failing command must propagate error")
	}
}

func TestMatchErrorMessages(t *testing.T) {
	e := &MatchError{Step: Step{Expect: "x"}, Seen: []string{"a", "b"}}
	if !strings.Contains(e.Error(), "exited") {
		t.Fatalf("exit msg = %q", e.Error())
	}
	e.Timeout = true
	if !strings.Contains(e.Error(), "timed out") {
		t.Fatalf("timeout msg = %q", e.Error())
	}
}

// TestContextKillsNeverMatchingDialogue is the deadline-aware kill path: a
// dialogue whose prompt never appears must terminate when the context
// deadline fires instead of blocking the worker for the full step (or
// prompt) timeout.
func TestContextKillsNeverMatchingDialogue(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	sh := sess.Shell()
	s.FS.Mkdir("/tmp/p")
	stage(s, "POVray", "/tmp/p/povray.tgz")
	sh.Chdir("/tmp/p")
	sess.Exec("tar xvfz povray.tgz")
	sh.Chdir("povray-3.6.1")

	// ./configure emits its license prompt and then blocks awaiting input;
	// the script never matches, so without the kill switch RunContext would
	// sit out the generous step timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sess.InteractContext(ctx, "./configure --prefix=/opt/pov", Script{
		{Expect: "THIS PROMPT NEVER APPEARS", Timeout: 30 * time.Second},
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("kill took %v, want ~the 100ms deadline", took)
	}
}

// TestContextKillWhileDraining covers the drain phase: the script has
// matched everything, but the process never exits.
func TestContextKillWhileDraining(t *testing.T) {
	s, v := testSite()
	sess := Open(s, v, time.Millisecond)
	sh := sess.Shell()
	s.FS.Mkdir("/tmp/p")
	stage(s, "POVray", "/tmp/p/povray.tgz")
	sh.Chdir("/tmp/p")
	sess.Exec("tar xvfz povray.tgz")
	sh.Chdir("povray-3.6.1")

	// Match the first prompt but answer a question the installer did not
	// ask next; it re-prompts and waits, so the drain after the last
	// scripted step never sees the output channel close.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := sess.InteractContext(ctx, "./configure --prefix=/opt/pov", Script{
		{Expect: "Accept POV-Ray license", Send: "y"},
	})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
