// Package expect implements the Expect-based virtual terminal GLARE's
// deployment handler uses to automate interactive installations.
//
// The paper: "Deployment Handler is an Expect based virtual terminal used
// to automatically interact with operating systems of different Grid sites
// ... the installation of POVray requires human interaction and prompts for
// license acceptance, user type, and install path, and activity provider
// specifies this interaction dialog in deploy-file in the form of
// send/expect patterns."
//
// The engine drives a site.Process: it matches expected patterns against
// the process's output stream and sends scripted responses.
package expect

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"time"

	"glare/internal/simclock"
	"glare/internal/site"
)

// Step is one send/expect pair: wait for output matching Expect, then send
// Send (if non-empty).
type Step struct {
	// Expect is a substring to wait for; if Regex is true it is compiled
	// as a regular expression instead.
	Expect string
	Regex  bool
	// Send is the line written to the process after the match.
	Send string
	// Timeout bounds the wait; zero uses the engine default.
	Timeout time.Duration
}

// Script is an ordered interaction dialog.
type Script []Step

// Engine runs scripts against processes.
type Engine struct {
	// DefaultTimeout bounds each step when the step has none. This is real
	// time (the process may be doing virtual-clock work, which completes in
	// microseconds of real time).
	DefaultTimeout time.Duration
}

// New creates an engine with a sensible default timeout.
func New() *Engine { return &Engine{DefaultTimeout: 10 * time.Second} }

// MatchError describes a failed expect step.
type MatchError struct {
	Step    Step
	Seen    []string
	Timeout bool
}

// Error implements the error interface.
func (e *MatchError) Error() string {
	if e.Timeout {
		return fmt.Sprintf("expect: timed out waiting for %q (saw %d lines)", e.Step.Expect, len(e.Seen))
	}
	return fmt.Sprintf("expect: process exited before %q matched (saw %d lines)", e.Step.Expect, len(e.Seen))
}

// Run drives the process through the script, then waits for process exit.
// All output seen is returned (matched or not).
func (e *Engine) Run(p *site.Process, script Script) ([]string, error) {
	return e.RunContext(context.Background(), p, script)
}

// RunContext is Run with a kill switch: when ctx is cancelled mid-dialogue
// — whether waiting for a match or draining output from a process that
// never exits — the engine abandons the process immediately instead of
// blocking the worker. The abandoned process is left to its own prompt
// timeouts; the caller gets ctx's error.
func (e *Engine) RunContext(ctx context.Context, p *site.Process, script Script) ([]string, error) {
	var seen []string
	for _, st := range script {
		match, err := e.compileMatcher(st)
		if err != nil {
			return seen, err
		}
		timeout := st.Timeout
		if timeout <= 0 {
			timeout = e.DefaultTimeout
		}
		deadline := time.NewTimer(timeout)
	waitMatch:
		for {
			select {
			case line, ok := <-p.Out():
				if !ok {
					deadline.Stop()
					return seen, &MatchError{Step: st, Seen: seen}
				}
				seen = append(seen, line)
				if match(line) {
					deadline.Stop()
					// An empty Send is a meaningful answer (accept the
					// installer's default), so always respond.
					p.Send(st.Send)
					break waitMatch
				}
			case <-deadline.C:
				return seen, &MatchError{Step: st, Seen: seen, Timeout: true}
			case <-ctx.Done():
				deadline.Stop()
				return seen, fmt.Errorf("expect: dialogue killed: %w", ctx.Err())
			}
		}
	}
	// Drain remaining output until exit.
	for {
		select {
		case line, ok := <-p.Out():
			if !ok {
				code := p.Wait()
				if err := p.Err(); err != nil {
					return seen, fmt.Errorf("expect: process failed: %w", err)
				}
				if code != 0 {
					return seen, fmt.Errorf("expect: process exited with code %d", code)
				}
				return seen, nil
			}
			seen = append(seen, line)
		case <-ctx.Done():
			return seen, fmt.Errorf("expect: dialogue killed: %w", ctx.Err())
		}
	}
}

func (e *Engine) compileMatcher(st Step) (func(string) bool, error) {
	if st.Regex {
		re, err := regexp.Compile(st.Expect)
		if err != nil {
			return nil, fmt.Errorf("expect: bad pattern %q: %w", st.Expect, err)
		}
		return re.MatchString, nil
	}
	needle := st.Expect
	return func(line string) bool { return strings.Contains(line, needle) }, nil
}

// Session is a logged-in virtual terminal on a site: the local shell or a
// glogin connection. Opening it pays the login/automation overhead the
// paper reports as "Expect Overhead" in Table 1.
type Session struct {
	shell  *site.Shell
	engine *Engine
	clock  simclock.Clock
}

// DefaultLoginCost matches Table 1's Expect overhead row (2,100 ms per
// deployment, covering glogin/GSI setup and terminal automation).
const DefaultLoginCost = 2100 * time.Millisecond

// Open logs into a site and returns a session. loginCost 0 uses the
// default; a negative value opens for free (reusing an existing login,
// e.g. when installing a dependency inside an already-open session).
func Open(s *site.Site, clock simclock.Clock, loginCost time.Duration) *Session {
	if clock == nil {
		clock = simclock.Real
	}
	if loginCost == 0 {
		loginCost = DefaultLoginCost
	}
	if loginCost > 0 {
		clock.Sleep(loginCost)
	}
	return &Session{shell: s.NewShell(), engine: New(), clock: clock}
}

// Shell exposes the underlying shell for environment setup.
func (s *Session) Shell() *site.Shell { return s.shell }

// Interact spawns the command and drives it with the script.
func (s *Session) Interact(cmdline string, script Script) ([]string, error) {
	return s.InteractContext(context.Background(), cmdline, script)
}

// InteractContext is Interact with a kill deadline (see RunContext).
func (s *Session) InteractContext(ctx context.Context, cmdline string, script Script) ([]string, error) {
	p := s.shell.Spawn(cmdline)
	return s.engine.RunContext(ctx, p, script)
}

// Exec runs a non-interactive command, failing on a nonzero exit.
func (s *Session) Exec(cmdline string) ([]string, error) {
	return s.ExecContext(context.Background(), cmdline)
}

// ExecContext is Exec with a kill deadline (see RunContext).
func (s *Session) ExecContext(ctx context.Context, cmdline string) ([]string, error) {
	p := s.shell.Spawn(cmdline)
	return s.engine.RunContext(ctx, p, nil)
}
