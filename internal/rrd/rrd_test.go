package rrd

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

var epoch = time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)

func mustCreate(t *testing.T, s *Store, def SeriesDef) {
	t.Helper()
	if err := s.Create(def); err != nil {
		t.Fatalf("Create(%s): %v", def.Name, err)
	}
}

func gaugeDef(name string, step time.Duration, archives ...ArchiveSpec) SeriesDef {
	return SeriesDef{Name: name, Kind: Gauge, Step: step, Archives: archives}
}

// TestConsolidationFunctions drives ten samples through one slot of each
// CF and checks the consolidated value against hand math.
func TestConsolidationFunctions(t *testing.T) {
	s := NewStore(time.Second)
	for _, cf := range []CF{Average, Min, Max, Last} {
		mustCreate(t, s, gaugeDef("m_"+cf.String(), time.Second, ArchiveSpec{CF: cf, Steps: 10, Rows: 4}))
	}
	// Samples 1..10 land in slot 0 of the 10s archives; one more sample at
	// t=10s closes that slot.
	for i := 1; i <= 10; i++ {
		ts := epoch.Add(time.Duration(i-1) * time.Second)
		for _, cf := range []CF{Average, Min, Max, Last} {
			if err := s.Update("m_"+cf.String(), ts, float64(i)); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
	}
	for _, cf := range []CF{Average, Min, Max, Last} {
		if err := s.Update("m_"+cf.String(), epoch.Add(10*time.Second), 99); err != nil {
			t.Fatal(err)
		}
	}
	want := map[CF]float64{Average: 5.5, Min: 1, Max: 10, Last: 10}
	for cf, w := range want {
		res, err := s.Fetch("m_"+cf.String(), cf, epoch, epoch.Add(9*time.Second))
		if err != nil {
			t.Fatalf("%s: %v", cf, err)
		}
		if len(res.Points) == 0 || res.Points[0].V != w {
			t.Fatalf("%s slot = %+v, want %v", cf, res.Points, w)
		}
	}
}

// TestCounterRateAndReset checks delta/Δt derivation, the NaN seed point,
// and that a counter going backwards yields one unknown point.
func TestCounterRateAndReset(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, SeriesDef{
		Name: "c", Kind: Counter, Step: time.Second,
		Archives: []ArchiveSpec{{CF: Average, Steps: 1, Rows: 16}},
	})
	vals := []float64{100, 110, 130, 130, 20, 25} // +10/s, +20/s, flat, reset, +5/s
	for i, v := range vals {
		if err := s.Update("c", epoch.Add(time.Duration(i)*time.Second), v); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	res, err := s.Fetch("c", Average, epoch, epoch.Add(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.NaN(), 10, 20, 0, math.NaN(), 5}
	if len(res.Points) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(res.Points), len(want), res.Points)
	}
	for i, w := range want {
		got := res.Points[i].V
		if math.IsNaN(w) != math.IsNaN(got) || (!math.IsNaN(w) && got != w) {
			t.Fatalf("point %d = %v, want %v", i, got, w)
		}
	}
}

// TestGapFillAndWraparound: a gap NaN-fills the skipped slots, and a gap
// longer than the whole ring wipes it.
func TestGapFillAndWraparound(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, gaugeDef("g", time.Second, ArchiveSpec{CF: Last, Steps: 1, Rows: 5}))
	up := func(sec int, v float64) {
		if err := s.Update("g", epoch.Add(time.Duration(sec)*time.Second), v); err != nil {
			t.Fatalf("update t=%d: %v", sec, err)
		}
	}
	up(0, 1)
	up(3, 4) // slots 1,2 unknown
	res, _ := s.Fetch("g", Last, epoch, epoch.Add(3*time.Second))
	if len(res.Points) != 4 || res.Points[0].V != 1 || !math.IsNaN(res.Points[1].V) || !math.IsNaN(res.Points[2].V) {
		t.Fatalf("gap fill wrong: %+v", res.Points)
	}
	if !res.Points[3].Live {
		t.Fatalf("head slot not marked live: %+v", res.Points[3])
	}
	// Wraparound: keep updating past the 5-row ring; old slots scroll off.
	for sec := 4; sec <= 20; sec++ {
		up(sec, float64(sec))
	}
	res, _ = s.Fetch("g", Last, epoch, epoch.Add(20*time.Second))
	if len(res.Points) != 5 {
		t.Fatalf("retention: got %d points, want 5", len(res.Points))
	}
	if res.Points[0].V != 16 || res.Points[4].V != 20 {
		t.Fatalf("ring contents wrong: %+v", res.Points)
	}
	// A gap wider than the ring wipes everything that came before.
	up(100, 7)
	res, _ = s.Fetch("g", Last, epoch, epoch.Add(100*time.Second))
	for _, p := range res.Points[:len(res.Points)-1] {
		if !math.IsNaN(p.V) {
			t.Fatalf("full-ring gap left stale value: %+v", res.Points)
		}
	}
}

// TestArchiveSelection: Fetch picks the finest archive that still covers
// the range start, falling back to the coarsest for deep history.
func TestArchiveSelection(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, gaugeDef("g", time.Second,
		ArchiveSpec{CF: Average, Steps: 1, Rows: 10},
		ArchiveSpec{CF: Average, Steps: 10, Rows: 100},
	))
	for sec := 0; sec <= 300; sec++ {
		_ = s.Update("g", epoch.Add(time.Duration(sec)*time.Second), 1)
	}
	recent, _ := s.Fetch("g", Average, epoch.Add(295*time.Second), epoch.Add(300*time.Second))
	if recent.Step != time.Second {
		t.Fatalf("recent fetch used step %v, want 1s", recent.Step)
	}
	deep, _ := s.Fetch("g", Average, epoch, epoch.Add(300*time.Second))
	if deep.Step != 10*time.Second {
		t.Fatalf("deep fetch used step %v, want 10s", deep.Step)
	}
	if _, err := s.Fetch("g", Max, epoch, epoch.Add(300*time.Second)); err != ErrNoArchive {
		t.Fatalf("Fetch with absent CF: %v, want ErrNoArchive", err)
	}
}

// TestUpdateRejections covers ErrPast (the idempotence hook), non-finite
// values, and unknown series.
func TestUpdateRejections(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, gaugeDef("g", time.Second, ArchiveSpec{CF: Average, Steps: 1, Rows: 4}))
	if err := s.Update("g", epoch.Add(5*time.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("g", epoch.Add(5*time.Second), 2); err != ErrPast {
		t.Fatalf("same-ts update: %v, want ErrPast", err)
	}
	if err := s.Update("g", epoch.Add(4*time.Second), 2); err != ErrPast {
		t.Fatalf("past update: %v, want ErrPast", err)
	}
	if err := s.Update("g", epoch.Add(6*time.Second), math.NaN()); err != ErrBadValue {
		t.Fatalf("NaN update: %v, want ErrBadValue", err)
	}
	if err := s.Update("nope", epoch, 1); err != ErrNoSeries {
		t.Fatalf("unknown series: %v, want ErrNoSeries", err)
	}
}

// TestCreateIdempotence: re-creating with the same definition is a no-op,
// a different one is ErrExists.
func TestCreateIdempotence(t *testing.T) {
	s := NewStore(time.Second)
	def := gaugeDef("g", time.Second, ArchiveSpec{CF: Average, Steps: 1, Rows: 4})
	mustCreate(t, s, def)
	if err := s.Create(def); err != nil {
		t.Fatalf("identical re-create: %v", err)
	}
	def2 := def
	def2.Archives = []ArchiveSpec{{CF: Max, Steps: 1, Rows: 4}}
	if err := s.Create(def2); err != ErrExists {
		t.Fatalf("conflicting re-create: %v, want ErrExists", err)
	}
}

// TestMemoryBound is the acceptance property: the allocated ring slots
// are fixed at Create and do not grow with update volume.
func TestMemoryBound(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, gaugeDef("g", time.Second,
		ArchiveSpec{CF: Average, Steps: 1, Rows: 600},
		ArchiveSpec{CF: Average, Steps: 10, Rows: 600},
		ArchiveSpec{CF: Max, Steps: 10, Rows: 600},
	))
	before := s.Footprint()
	if before != 1800 {
		t.Fatalf("footprint after Create = %d, want 1800", before)
	}
	for i := 0; i < 200000; i++ {
		_ = s.Update("g", epoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	if after := s.Footprint(); after != before {
		t.Fatalf("footprint grew with updates: %d -> %d", before, after)
	}
	for _, d := range s.Dump() {
		for _, a := range d.Archives {
			if len(a.Ring) != a.Spec.Rows || cap(a.Ring) < a.Spec.Rows {
				t.Fatalf("ring of %s/%s resized: len=%d rows=%d", d.Def.Name, a.Spec.CF, len(a.Ring), a.Spec.Rows)
			}
		}
	}
}

// TestDumpRestoreRoundTrip: dump → JSON → restore preserves rings
// (including NaN slots), the counter seed, and open accumulators.
func TestDumpRestoreRoundTrip(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, SeriesDef{
		Name: "c", Kind: Counter, Step: time.Second,
		Archives: []ArchiveSpec{{CF: Average, Steps: 1, Rows: 8}, {CF: Max, Steps: 4, Rows: 8}},
	})
	total := 0.0
	for sec := 0; sec <= 9; sec++ {
		if sec == 5 {
			continue // leave an unknown slot in the middle
		}
		total += float64(sec)
		_ = s.Update("c", epoch.Add(time.Duration(sec)*time.Second), total)
	}
	dumps := s.Dump()
	blob, err := json.Marshal(dumps)
	if err != nil {
		t.Fatalf("dump marshal: %v", err)
	}
	var back []SeriesDump
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("dump unmarshal: %v", err)
	}
	s2 := NewStore(time.Second)
	for _, d := range back {
		if err := s2.RestoreSeries(d); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	r1, _ := s.Fetch("c", Average, epoch, epoch.Add(9*time.Second))
	r2, _ := s2.Fetch("c", Average, epoch, epoch.Add(9*time.Second))
	if len(r1.Points) != len(r2.Points) {
		t.Fatalf("point count changed: %d vs %d", len(r1.Points), len(r2.Points))
	}
	for i := range r1.Points {
		a, b := r1.Points[i].V, r2.Points[i].V
		if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
			t.Fatalf("point %d: %v vs %v", i, a, b)
		}
	}
	// Counter continuity: the next delta on the restored store must use
	// the dumped lastVal, not restart from a seed NaN.
	if err := s2.Update("c", epoch.Add(10*time.Second), total+7); err != nil {
		t.Fatal(err)
	}
	res, _ := s2.Fetch("c", Average, epoch.Add(10*time.Second), epoch.Add(10*time.Second))
	if len(res.Points) != 1 || res.Points[0].V != 7 {
		t.Fatalf("post-restore rate = %+v, want 7/s", res.Points)
	}
}

// TestXportCoversAllArchives and clips to observed slots.
func TestXportCoversAllArchives(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, gaugeDef("g", time.Second,
		ArchiveSpec{CF: Average, Steps: 1, Rows: 600},
		ArchiveSpec{CF: Max, Steps: 10, Rows: 600},
	))
	for sec := 0; sec < 25; sec++ {
		_ = s.Update("g", epoch.Add(time.Duration(sec)*time.Second), float64(sec))
	}
	x, err := s.Xport("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Archives) != 2 {
		t.Fatalf("got %d archives, want 2", len(x.Archives))
	}
	if n := len(x.Archives[0].Points); n != 25 {
		t.Fatalf("fine archive exported %d points, want 25 (not a NaN-padded full ring)", n)
	}
	if n := len(x.Archives[1].Points); n != 3 {
		t.Fatalf("coarse archive exported %d points, want 3", n)
	}
}

// TestRingValuesJSON: NaN round-trips as null.
func TestRingValuesJSON(t *testing.T) {
	in := RingValues{1.5, math.NaN(), -2}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "[1.5,null,-2]" {
		t.Fatalf("marshal = %s", blob)
	}
	var out RingValues
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1.5 || !math.IsNaN(out[1]) || out[2] != -2 {
		t.Fatalf("unmarshal = %v", out)
	}
}
