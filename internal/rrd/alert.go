package rrd

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Predicate compares a windowed value against a rule threshold.
type Predicate uint8

const (
	Above Predicate = iota
	Below
)

// String renders the predicate name.
func (p Predicate) String() string {
	if p == Below {
		return "below"
	}
	return "above"
}

// Rule is one alert rule evaluated against the ring archives: consolidate
// Metric over the trailing Window with CF, compare against Threshold, and
// fire once the condition has held for For. Action is an opaque verb the
// embedding system interprets (rdm understands "quarantine").
type Rule struct {
	Name      string        `json:"name"`
	Metric    string        `json:"metric"`
	CF        CF            `json:"cf"`
	Window    time.Duration `json:"window"`
	Predicate Predicate     `json:"predicate"`
	Threshold float64       `json:"threshold"`
	For       time.Duration `json:"for"`
	Action    string        `json:"action,omitempty"`
}

// Alert is one firing rule instance.
type Alert struct {
	Rule    Rule
	Value   float64   // windowed value at the last evaluation
	Since   time.Time // when the condition first held
	FiredAt time.Time // when the alert transitioned to firing
}

// Alerts evaluates a fixed rule set against one Store. The pending map
// implements for-duration: a rule fires only after its condition has held
// continuously since pending[rule].
type Alerts struct {
	store   *Store
	mu      sync.Mutex
	rules   []Rule
	pending map[string]time.Time
	firing  map[string]*Alert
}

// NewAlerts creates an evaluator over the store.
func NewAlerts(store *Store, rules []Rule) *Alerts {
	return &Alerts{
		store:   store,
		rules:   append([]Rule(nil), rules...),
		pending: make(map[string]time.Time),
		firing:  make(map[string]*Alert),
	}
}

// Rules returns the configured rule set.
func (a *Alerts) Rules() []Rule {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Rule(nil), a.rules...)
}

// Evaluate runs every rule at the given instant and returns the alerts
// that transitioned to firing on this pass. Already-firing alerts update
// their Value; recovered conditions clear pending and firing state.
func (a *Alerts) Evaluate(now time.Time) []Alert {
	a.mu.Lock()
	defer a.mu.Unlock()
	var fired []Alert
	for _, r := range a.rules {
		v, ok := a.windowValue(r, now)
		holds := ok && r.holds(v)
		if !holds {
			delete(a.pending, r.Name)
			delete(a.firing, r.Name)
			continue
		}
		since, pending := a.pending[r.Name]
		if !pending {
			since = now
			a.pending[r.Name] = now
		}
		if al := a.firing[r.Name]; al != nil {
			al.Value = v
			continue
		}
		if now.Sub(since) < r.For {
			continue
		}
		al := &Alert{Rule: r, Value: v, Since: since, FiredAt: now}
		a.firing[r.Name] = al
		fired = append(fired, *al)
	}
	return fired
}

func (r Rule) holds(v float64) bool {
	if r.Predicate == Below {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// windowValue consolidates the rule's metric over [now-Window, now].
// AVERAGE divides by the full slot count of the window — unknown slots
// count as zero — so a sparse burst cannot look denser than it was.
// MIN/MAX/LAST ignore unknown slots entirely.
func (a *Alerts) windowValue(r Rule, now time.Time) (float64, bool) {
	res, err := a.store.Fetch(r.Metric, r.CF, now.Add(-r.Window), now)
	if err != nil || len(res.Points) == 0 {
		return 0, false
	}
	switch r.CF {
	case Average:
		sum := 0.0
		for _, p := range res.Points {
			if !math.IsNaN(p.V) {
				sum += p.V
			}
		}
		slots := int(r.Window / res.Step)
		if slots < 1 {
			slots = 1
		}
		return sum / float64(slots), true
	case Min:
		v, ok := math.Inf(1), false
		for _, p := range res.Points {
			if !math.IsNaN(p.V) && p.V < v {
				v, ok = p.V, true
			}
		}
		return v, ok
	case Max:
		v, ok := math.Inf(-1), false
		for _, p := range res.Points {
			if !math.IsNaN(p.V) && p.V > v {
				v, ok = p.V, true
			}
		}
		return v, ok
	default: // Last
		for i := len(res.Points) - 1; i >= 0; i-- {
			if !math.IsNaN(res.Points[i].V) {
				return res.Points[i].V, true
			}
		}
		return 0, false
	}
}

// Firing returns the currently-firing alerts, sorted by rule name.
func (a *Alerts) Firing() []Alert {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Alert, 0, len(a.firing))
	for _, al := range a.firing {
		out = append(out, *al)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// FiringCount returns how many rules are currently firing.
func (a *Alerts) FiringCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.firing)
}
