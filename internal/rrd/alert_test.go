package rrd

import (
	"testing"
	"time"
)

// failureStore builds a counter series fed once per second and returns
// the store plus the instant of the last sample.
func failureStore(t *testing.T, totals []float64) (*Store, time.Time) {
	t.Helper()
	s := NewStore(time.Second)
	mustCreate(t, s, SeriesDef{
		Name: "fails", Kind: Counter, Step: time.Second,
		Archives: []ArchiveSpec{{CF: Average, Steps: 1, Rows: 60}},
	})
	var last time.Time
	for i, v := range totals {
		last = epoch.Add(time.Duration(i) * time.Second)
		if err := s.Update("fails", last, v); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	return s, last
}

func rateRule(window time.Duration) Rule {
	return Rule{
		Name: "failure-rate", Metric: "fails", CF: Average,
		Window: window, Predicate: Above, Threshold: 1.0 / window.Seconds(),
		Action: "quarantine",
	}
}

// TestAlertFiresOnRisingRate: one failure in the window stays quiet, the
// second crosses the 1-per-window threshold and fires exactly once.
func TestAlertFiresOnRisingRate(t *testing.T) {
	s, now := failureStore(t, []float64{0, 0, 0, 1, 1, 1})
	al := NewAlerts(s, []Rule{rateRule(10 * time.Second)})
	if fired := al.Evaluate(now); len(fired) != 0 {
		t.Fatalf("one failure fired the alert: %+v", fired)
	}
	_ = s.Update("fails", now.Add(time.Second), 2)
	now = now.Add(time.Second)
	fired := al.Evaluate(now)
	if len(fired) != 1 || fired[0].Rule.Name != "failure-rate" {
		t.Fatalf("two failures did not fire: %+v", fired)
	}
	if al.FiringCount() != 1 {
		t.Fatalf("firing count = %d, want 1", al.FiringCount())
	}
	// A second evaluation of a still-true condition must not re-fire.
	if again := al.Evaluate(now.Add(time.Second)); len(again) != 0 {
		t.Fatalf("already-firing alert fired again: %+v", again)
	}
}

// TestAlertForDuration: the condition must hold for the rule's For before
// the alert fires.
func TestAlertForDuration(t *testing.T) {
	s, now := failureStore(t, []float64{0, 1, 2, 3})
	r := rateRule(10 * time.Second)
	r.For = 3 * time.Second
	al := NewAlerts(s, []Rule{r})
	for i := 0; i < 3; i++ {
		if fired := al.Evaluate(now.Add(time.Duration(i) * time.Second)); len(fired) != 0 {
			t.Fatalf("fired at +%ds, before For elapsed: %+v", i, fired)
		}
	}
	if fired := al.Evaluate(now.Add(3 * time.Second)); len(fired) != 1 {
		t.Fatalf("did not fire after For held: %+v", fired)
	}
}

// TestAlertRecovery: once the failure burst scrolls out of the window the
// alert clears, and a later burst fires it afresh.
func TestAlertRecovery(t *testing.T) {
	s, now := failureStore(t, []float64{0, 1, 2, 2})
	al := NewAlerts(s, []Rule{rateRule(5 * time.Second)})
	if fired := al.Evaluate(now); len(fired) != 1 {
		t.Fatalf("burst did not fire: %+v", fired)
	}
	// Quiet period: the burst scrolls out of the 5s window.
	v := 2.0
	for i := 1; i <= 8; i++ {
		now = now.Add(time.Second)
		_ = s.Update("fails", now, v)
	}
	al.Evaluate(now)
	if al.FiringCount() != 0 {
		t.Fatalf("alert did not recover: %+v", al.Firing())
	}
	// Fresh burst re-fires.
	now = now.Add(time.Second)
	_ = s.Update("fails", now, v+2)
	if fired := al.Evaluate(now); len(fired) != 1 {
		t.Fatalf("fresh burst did not re-fire: %+v", fired)
	}
}

// TestAlertUnknownMetric: a rule over a missing series never fires.
func TestAlertUnknownMetric(t *testing.T) {
	s := NewStore(time.Second)
	al := NewAlerts(s, []Rule{rateRule(10 * time.Second)})
	if fired := al.Evaluate(epoch); len(fired) != 0 {
		t.Fatalf("rule over missing series fired: %+v", fired)
	}
}

// TestAlertBelowPredicate with a MAX window.
func TestAlertBelowPredicate(t *testing.T) {
	s := NewStore(time.Second)
	mustCreate(t, s, gaugeDef("free", time.Second, ArchiveSpec{CF: Min, Steps: 1, Rows: 30}))
	now := epoch
	for i := 0; i < 10; i++ {
		now = epoch.Add(time.Duration(i) * time.Second)
		_ = s.Update("free", now, 100)
	}
	r := Rule{Name: "low-free", Metric: "free", CF: Min, Window: 10 * time.Second, Predicate: Below, Threshold: 10}
	al := NewAlerts(s, []Rule{r})
	if fired := al.Evaluate(now); len(fired) != 0 {
		t.Fatalf("healthy gauge fired: %+v", fired)
	}
	now = now.Add(time.Second)
	_ = s.Update("free", now, 5)
	if fired := al.Evaluate(now); len(fired) != 1 {
		t.Fatalf("low gauge did not fire: %+v", fired)
	}
}
