// Package rrd is a round-robin time-series database in the style of
// RRDtool: every series owns a small set of fixed-size ring archives at
// derived resolutions, so memory is bounded at Create time no matter how
// many updates arrive afterwards.
//
// GLARE uses it to keep telemetry *history* — the /metrics exposition
// answers "what is the counter now", the rrd store answers "is it
// rising". Raw samples arrive at a base step; each archive consolidates
// them into slots of Steps×step under a consolidation function
// (AVERAGE/MIN/MAX/LAST). Counter-kind series are differentiated first
// (delta/Δt), so monotone glare_*_total counters become rates per second.
//
// The store is clock-agnostic: callers pass explicit timestamps, which in
// GLARE come from the site's simclock (virtual in tests, wall clock in
// glared). Unknown slots are NaN, exactly as in RRDtool.
package rrd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultStep is the base sampling period used when a store or series is
// created with a non-positive step.
const DefaultStep = 5 * time.Second

// Sentinel errors returned by Store methods. ErrPast in particular is a
// normal condition for idempotent feeds (WAL replay, rollup re-pulls) and
// callers are expected to ignore it.
var (
	ErrNoSeries  = errors.New("rrd: no such series")
	ErrNoArchive = errors.New("rrd: no archive with that consolidation function")
	ErrExists    = errors.New("rrd: series already exists with a different definition")
	ErrPast      = errors.New("rrd: update does not advance past the last sample")
	ErrBadValue  = errors.New("rrd: non-finite value")
	ErrBadDef    = errors.New("rrd: invalid series definition")
)

// CF is a consolidation function: how raw primary data points are folded
// into one archive slot.
type CF uint8

const (
	Average CF = iota
	Min
	Max
	Last
)

// String renders the RRDtool-style upper-case name.
func (c CF) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Last:
		return "LAST"
	}
	return fmt.Sprintf("CF(%d)", uint8(c))
}

// ParseCF parses a consolidation-function name, case-insensitively.
func ParseCF(s string) (CF, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "AVERAGE", "AVG":
		return Average, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	case "LAST":
		return Last, nil
	}
	return Average, fmt.Errorf("rrd: unknown consolidation function %q", s)
}

// Kind tells the store how to derive primary data points from raw samples.
type Kind uint8

const (
	// Gauge samples are stored as-is.
	Gauge Kind = iota
	// Counter samples are monotone totals; the stored primary data point
	// is the rate (value delta / time delta, per second). A decrease is
	// treated as a counter reset and yields one unknown (NaN) point.
	Counter
)

// String renders the kind name.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// ArchiveSpec declares one ring archive: Rows slots of Steps base steps
// each, consolidated under CF. A 5s base step with {Average, 12, 600}
// keeps ten hours of one-minute averages in exactly 600 slots.
type ArchiveSpec struct {
	CF    CF  `json:"cf"`
	Steps int `json:"steps"`
	Rows  int `json:"rows"`
}

// SeriesDef declares one series and its archives.
type SeriesDef struct {
	Name     string        `json:"name"`
	Kind     Kind          `json:"kind"`
	Step     time.Duration `json:"step"`
	Archives []ArchiveSpec `json:"archives"`
}

// DefaultArchives is the retention ladder used when none is configured:
// 600 slots at the base step, 600 at 10×, 1440 at 60× (a day of minutes
// when the base step is 1s), plus a MAX archive at 10× so short spikes
// survive averaging.
func DefaultArchives() []ArchiveSpec {
	return []ArchiveSpec{
		{CF: Average, Steps: 1, Rows: 600},
		{CF: Average, Steps: 10, Rows: 600},
		{CF: Average, Steps: 60, Rows: 1440},
		{CF: Max, Steps: 10, Rows: 600},
	}
}

// Point is one consolidated data point. Live marks the still-accumulating
// slot at the head of an archive, whose value may yet change.
type Point struct {
	TS   time.Time
	V    float64
	Live bool
}

// Result is the outcome of a Fetch: consolidated points from the finest
// archive that covers the requested range.
type Result struct {
	Name   string
	CF     CF
	Step   time.Duration // slot width of the chosen archive
	Points []Point
}

// archive is one live ring. cur is the absolute slot index currently
// accumulating; ring[i%Rows] holds slot i's consolidated value for the
// most recent Rows slots. first pins the oldest slot ever observed so
// fresh series do not report a full ring of NaN history.
type archive struct {
	spec    ArchiveSpec
	slotNs  int64
	ring    []float64
	cur     int64
	first   int64
	started bool
	accSum  float64
	accCnt  int
	accMin  float64
	accMax  float64
	accLast float64
}

func newArchive(spec ArchiveSpec, step time.Duration) *archive {
	a := &archive{
		spec:   spec,
		slotNs: int64(step) * int64(spec.Steps),
		ring:   make([]float64, spec.Rows),
	}
	for i := range a.ring {
		a.ring[i] = math.NaN()
	}
	return a
}

func (a *archive) resetAcc() {
	a.accSum, a.accCnt = 0, 0
	a.accMin, a.accMax, a.accLast = 0, 0, 0
}

// consolidate folds the open accumulator into one slot value.
func (a *archive) consolidate() float64 {
	if a.accCnt == 0 {
		return math.NaN()
	}
	switch a.spec.CF {
	case Min:
		return a.accMin
	case Max:
		return a.accMax
	case Last:
		return a.accLast
	default:
		return a.accSum / float64(a.accCnt)
	}
}

// observe feeds one primary data point (possibly NaN) at absolute time
// tsn. Slot transitions finalize the previous accumulator and NaN-fill
// any gap; a gap of a full ring wipes everything, matching RRDtool.
func (a *archive) observe(tsn int64, v float64) {
	slot := tsn / a.slotNs
	if !a.started {
		a.started = true
		a.cur, a.first = slot, slot
		a.resetAcc()
	}
	if slot != a.cur {
		a.ring[a.cur%int64(len(a.ring))] = a.consolidate()
		if gap := slot - a.cur - 1; gap >= int64(len(a.ring)) {
			for i := range a.ring {
				a.ring[i] = math.NaN()
			}
		} else {
			for g := a.cur + 1; g < slot; g++ {
				a.ring[g%int64(len(a.ring))] = math.NaN()
			}
		}
		a.cur = slot
		a.resetAcc()
	}
	if math.IsNaN(v) {
		return
	}
	if a.accCnt == 0 {
		a.accMin, a.accMax = v, v
	} else {
		if v < a.accMin {
			a.accMin = v
		}
		if v > a.accMax {
			a.accMax = v
		}
	}
	a.accSum += v
	a.accLast = v
	a.accCnt++
}

// oldestSlot is the earliest slot still retained (and actually observed).
func (a *archive) oldestSlot() int64 {
	lo := a.cur - int64(len(a.ring)) + 1
	if lo < a.first {
		lo = a.first
	}
	return lo
}

// series is one named time-series with its own lock so updates to
// different series never contend.
type series struct {
	mu       sync.Mutex
	def      SeriesDef
	lastTS   int64 // unix nanos of the last raw sample; 0 = none yet
	lastVal  float64
	archives []*archive
}

// Store holds many series sharing a default base step.
type Store struct {
	mu     sync.RWMutex
	step   time.Duration
	series map[string]*series
}

// NewStore creates a store whose series default to the given base step.
func NewStore(step time.Duration) *Store {
	if step <= 0 {
		step = DefaultStep
	}
	return &Store{step: step, series: make(map[string]*series)}
}

// Step returns the store's default base step.
func (s *Store) Step() time.Duration { return s.step }

// Create registers a series. Creating an existing series with an equal
// definition is a no-op; a different definition is ErrExists.
func (s *Store) Create(def SeriesDef) error {
	if def.Name == "" || len(def.Archives) == 0 {
		return ErrBadDef
	}
	if def.Step <= 0 {
		def.Step = s.step
	}
	for _, a := range def.Archives {
		if a.Steps <= 0 || a.Rows <= 0 {
			return ErrBadDef
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.series[def.Name]; ok {
		if defEqual(old.def, def) {
			return nil
		}
		return ErrExists
	}
	sr := &series{def: def}
	for _, spec := range def.Archives {
		sr.archives = append(sr.archives, newArchive(spec, def.Step))
	}
	s.series[def.Name] = sr
	return nil
}

func defEqual(a, b SeriesDef) bool {
	if a.Name != b.Name || a.Kind != b.Kind || a.Step != b.Step || len(a.Archives) != len(b.Archives) {
		return false
	}
	for i := range a.Archives {
		if a.Archives[i] != b.Archives[i] {
			return false
		}
	}
	return true
}

// Has reports whether the series exists.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.series[name]
	return ok
}

// Names returns all series names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of series.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series)
}

// Def returns a series' definition.
func (s *Store) Def(name string) (SeriesDef, bool) {
	s.mu.RLock()
	sr := s.series[name]
	s.mu.RUnlock()
	if sr == nil {
		return SeriesDef{}, false
	}
	return sr.def, true
}

// LastTS returns the timestamp of the last accepted raw sample.
func (s *Store) LastTS(name string) (time.Time, bool) {
	s.mu.RLock()
	sr := s.series[name]
	s.mu.RUnlock()
	if sr == nil {
		return time.Time{}, false
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.lastTS == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, sr.lastTS), true
}

// Footprint returns the total number of ring slots allocated across all
// series — the store's memory bound, fixed at Create time.
func (s *Store) Footprint() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, sr := range s.series {
		for _, a := range sr.archives {
			n += len(a.ring)
		}
	}
	return n
}

// Update feeds one raw sample. Timestamps must strictly advance per
// series; a stale timestamp is ErrPast (idempotent feeds ignore it).
func (s *Store) Update(name string, ts time.Time, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ErrBadValue
	}
	s.mu.RLock()
	sr := s.series[name]
	s.mu.RUnlock()
	if sr == nil {
		return ErrNoSeries
	}
	tsn := ts.UnixNano()
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.lastTS != 0 && tsn <= sr.lastTS {
		return ErrPast
	}
	pdp := v
	if sr.def.Kind == Counter {
		if sr.lastTS == 0 {
			pdp = math.NaN() // no delta yet
		} else if v < sr.lastVal {
			pdp = math.NaN() // counter reset
		} else {
			dt := float64(tsn-sr.lastTS) / float64(time.Second)
			pdp = (v - sr.lastVal) / dt
		}
	}
	sr.lastTS, sr.lastVal = tsn, v
	for _, a := range sr.archives {
		a.observe(tsn, pdp)
	}
	return nil
}

// Fetch returns consolidated points in [start, end] from the finest
// archive with the requested CF whose retention still covers start (or
// the coarsest such archive when none reaches back far enough). The
// still-accumulating head slot is included with Live=true.
func (s *Store) Fetch(name string, cf CF, start, end time.Time) (*Result, error) {
	s.mu.RLock()
	sr := s.series[name]
	s.mu.RUnlock()
	if sr == nil {
		return nil, ErrNoSeries
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var candidates []*archive
	for _, a := range sr.archives {
		if a.spec.CF == cf {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoArchive
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].slotNs < candidates[j].slotNs })
	chosen := candidates[len(candidates)-1]
	for _, a := range candidates {
		if !a.started {
			continue
		}
		if a.oldestSlot()*a.slotNs <= start.UnixNano() {
			chosen = a
			break
		}
	}
	return &Result{
		Name:   name,
		CF:     cf,
		Step:   time.Duration(chosen.slotNs),
		Points: archivePoints(chosen, start.UnixNano(), end.UnixNano()),
	}, nil
}

// archivePoints extracts [startNs, endNs] from one ring; caller holds the
// series lock.
func archivePoints(a *archive, startNs, endNs int64) []Point {
	if !a.started {
		return nil
	}
	lo := startNs / a.slotNs
	hi := endNs / a.slotNs
	if oldest := a.oldestSlot(); lo < oldest {
		lo = oldest
	}
	if hi > a.cur {
		hi = a.cur
	}
	if hi < lo {
		return nil
	}
	pts := make([]Point, 0, hi-lo+1)
	for sl := lo; sl <= hi; sl++ {
		p := Point{TS: time.Unix(0, sl*a.slotNs)}
		if sl == a.cur {
			p.V = a.consolidate()
			p.Live = true
		} else {
			p.V = a.ring[sl%int64(len(a.ring))]
		}
		pts = append(pts, p)
	}
	return pts
}

// XportArchive is one archive's full retained contents.
type XportArchive struct {
	Spec   ArchiveSpec
	Step   time.Duration
	Points []Point
}

// XportSeries is a full export of one series across all its archives,
// the unit served over the HistoryXport wire op.
type XportSeries struct {
	Def      SeriesDef
	Archives []XportArchive
}

// Xport exports every archive of a series in definition order.
func (s *Store) Xport(name string) (*XportSeries, error) {
	s.mu.RLock()
	sr := s.series[name]
	s.mu.RUnlock()
	if sr == nil {
		return nil, ErrNoSeries
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := &XportSeries{Def: sr.def}
	for _, a := range sr.archives {
		xa := XportArchive{Spec: a.spec, Step: time.Duration(a.slotNs)}
		if a.started {
			xa.Points = archivePoints(a, a.oldestSlot()*a.slotNs, a.cur*a.slotNs)
		}
		out.Archives = append(out.Archives, xa)
	}
	return out, nil
}

// RingValues is a ring buffer that survives JSON: NaN slots marshal as
// null (JSON has no NaN) and come back as NaN.
type RingValues []float64

// MarshalJSON renders NaN as null.
func (r RingValues) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		if math.IsNaN(v) {
			b.WriteString("null")
		} else {
			enc, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			b.Write(enc)
		}
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

// UnmarshalJSON restores null as NaN.
func (r *RingValues) UnmarshalJSON(data []byte) error {
	var raw []*float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(RingValues, len(raw))
	for i, p := range raw {
		if p == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *p
		}
	}
	*r = out
	return nil
}

// ArchiveDump is one archive's complete state, used by store snapshots.
// Accumulator fields are always finite, so the struct is JSON-safe.
type ArchiveDump struct {
	Spec    ArchiveSpec `json:"spec"`
	Cur     int64       `json:"cur"`
	First   int64       `json:"first"`
	Started bool        `json:"started"`
	Ring    RingValues  `json:"ring"`
	AccSum  float64     `json:"acc_sum"`
	AccCnt  int         `json:"acc_cnt"`
	AccMin  float64     `json:"acc_min"`
	AccMax  float64     `json:"acc_max"`
	AccLast float64     `json:"acc_last"`
}

// SeriesDump is one series' complete state.
type SeriesDump struct {
	Def      SeriesDef     `json:"def"`
	LastTS   int64         `json:"last_ts"`
	LastVal  float64       `json:"last_val"`
	Archives []ArchiveDump `json:"archives"`
}

// Dump exports every series' full state, sorted by name.
func (s *Store) Dump() []SeriesDump {
	names := s.Names()
	out := make([]SeriesDump, 0, len(names))
	for _, n := range names {
		s.mu.RLock()
		sr := s.series[n]
		s.mu.RUnlock()
		if sr == nil {
			continue
		}
		sr.mu.Lock()
		d := SeriesDump{Def: sr.def, LastTS: sr.lastTS, LastVal: sr.lastVal}
		for _, a := range sr.archives {
			ring := make(RingValues, len(a.ring))
			copy(ring, a.ring)
			d.Archives = append(d.Archives, ArchiveDump{
				Spec: a.spec, Cur: a.cur, First: a.first, Started: a.started,
				Ring: ring, AccSum: a.accSum, AccCnt: a.accCnt,
				AccMin: a.accMin, AccMax: a.accMax, AccLast: a.accLast,
			})
		}
		sr.mu.Unlock()
		out = append(out, d)
	}
	return out
}

// RestoreSeries installs one dumped series, replacing any existing series
// of the same name. Ring lengths are clamped to the definition's Rows so
// a hand-edited dump cannot inflate the memory bound.
func (s *Store) RestoreSeries(d SeriesDump) error {
	if d.Def.Name == "" || len(d.Def.Archives) == 0 {
		return ErrBadDef
	}
	sr := &series{def: d.Def, lastTS: d.LastTS, lastVal: d.LastVal}
	for i, spec := range d.Def.Archives {
		a := newArchive(spec, d.Def.Step)
		if i < len(d.Archives) {
			ad := d.Archives[i]
			a.cur, a.first, a.started = ad.Cur, ad.First, ad.Started
			copy(a.ring, ad.Ring)
			a.accSum, a.accCnt = ad.AccSum, ad.AccCnt
			a.accMin, a.accMax, a.accLast = ad.AccMin, ad.AccMax, ad.AccLast
		}
		sr.archives = append(sr.archives, a)
	}
	s.mu.Lock()
	s.series[d.Def.Name] = sr
	s.mu.Unlock()
	return nil
}

// Clone deep-copies the store (used by the durable store's state clone).
func (s *Store) Clone() *Store {
	out := NewStore(s.step)
	for _, d := range s.Dump() {
		_ = out.RestoreSeries(d)
	}
	return out
}

// Sample is one raw observation inside a journaled Batch.
type Sample struct {
	Name  string  `json:"n"`
	Value float64 `json:"v"`
}

// Batch is one sampler tick's raw observations, the unit the durable
// store journals between snapshots. Replaying a batch through Update is
// idempotent because stale timestamps are rejected with ErrPast.
type Batch struct {
	TS      time.Time `json:"ts"`
	Samples []Sample  `json:"s"`
}
