package rrd

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// BenchmarkRRDUpdateSingleSeries measures raw update throughput through
// one series with the default four-archive ladder. The acceptance floor
// is 100k updates/s; the per-op cost here is a handful of integer
// divisions and comparisons, so this runs orders of magnitude above it.
func BenchmarkRRDUpdateSingleSeries(b *testing.B) {
	s := NewStore(time.Second)
	if err := s.Create(SeriesDef{Name: "c", Kind: Counter, Step: time.Second, Archives: DefaultArchives()}); err != nil {
		b.Fatal(err)
	}
	base := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Update("c", base.Add(time.Duration(i)*time.Second), float64(i))
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "updates/s")
	}
}

// BenchmarkRRDFetch10kSeries measures Fetch latency against a store
// holding 10^4 populated series and reports the observed p99 per fetch.
// The acceptance ceiling is 1ms.
func BenchmarkRRDFetch10kSeries(b *testing.B) {
	const nSeries = 10000
	s := NewStore(time.Second)
	base := time.Date(2005, 11, 12, 0, 0, 0, 0, time.UTC)
	names := make([]string, nSeries)
	for i := range names {
		names[i] = fmt.Sprintf("series_%04d", i)
		if err := s.Create(SeriesDef{Name: names[i], Kind: Gauge, Step: time.Second, Archives: DefaultArchives()}); err != nil {
			b.Fatal(err)
		}
		for sec := 0; sec < 64; sec++ {
			_ = s.Update(names[i], base.Add(time.Duration(sec)*time.Second), float64(sec))
		}
	}
	end := base.Add(64 * time.Second)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := s.Fetch(names[i%nSeries], Average, base, end); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns/op")
}
