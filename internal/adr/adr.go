// Package adr implements the Activity Deployment Registry: it "complements
// [the] Type Registry and maintains a set of activity deployments of
// concrete activity types as WS-Resources" (paper §3.1).
//
// Invariant from the paper: "an activity type must be present in the type
// registry before registration of its deployments. ... In case of failure
// in discovering [a] matching activity type, the deployment registry
// service requests the type registry service for the dynamic registration
// of a new activity type."
package adr

import (
	"fmt"
	"time"

	"glare/internal/activity"
	"glare/internal/atr"
	"glare/internal/epr"
	"glare/internal/simclock"
	"glare/internal/telemetry"
	"glare/internal/transport"
	"glare/internal/wsrf"
	"glare/internal/xmlutil"
)

// KeyName is the EPR reference-property for deployment resources.
const KeyName = "ActivityDeploymentKey"

// ServiceName is the transport mount point.
const ServiceName = "ActivityDeploymentRegistry"

// Journal receives every registry mutation for durable replay (the
// write-ahead log of internal/store satisfies it). Implementations must
// be safe for concurrent use; nil means no persistence.
type Journal interface {
	RecordPut(key string, doc *xmlutil.Node, lut, term time.Time)
	RecordDelete(key string)
}

// Registry is one site's Activity Deployment Registry.
type Registry struct {
	home    *wsrf.Home
	types   *atr.Registry
	broker  *wsrf.Broker
	clock   simclock.Clock
	stamp   func() time.Time // ordering-stamp source; nil = clock.Now
	journal Journal

	// Hot-path counters; nil (no-op) until SetTelemetry is called.
	registers, byType, removes *telemetry.Counter
}

// New creates a deployment registry bound to the site's type registry.
func New(serviceURL string, types *atr.Registry, clock simclock.Clock, broker *wsrf.Broker) *Registry {
	if clock == nil {
		clock = simclock.Real
	}
	if broker == nil {
		broker = wsrf.NewBroker(clock)
	}
	r := &Registry{
		home:   wsrf.NewHome(serviceURL, KeyName, clock),
		types:  types,
		broker: broker,
		clock:  clock,
	}
	return r
}

// Home exposes the resource home.
func (r *Registry) Home() *wsrf.Home { return r.home }

// SetTelemetry binds the registry's hot-path counters to a site's
// telemetry registry. Call during site assembly, before serving traffic.
func (r *Registry) SetTelemetry(tel *telemetry.Telemetry) {
	r.registers = tel.Counter("glare_adr_registers_total")
	r.byType = tel.Counter("glare_adr_bytype_total")
	r.removes = tel.Counter("glare_adr_removes_total")
}

// SetJournal binds the durability journal; call during site assembly,
// before serving traffic.
func (r *Registry) SetJournal(j Journal) { r.journal = j }

// SetStamp binds the source of LastUpdateTime stamps — the site's hybrid
// logical clock — so cross-site newest-wins comparisons (anti-entropy,
// replication) survive wall-clock skew. Call during site assembly, before
// serving traffic. Expiry sweeps stay on the physical clock.
func (r *Registry) SetStamp(fn func() time.Time) {
	r.stamp = fn
	r.home.SetStamp(fn)
}

// now returns the next ordering stamp.
func (r *Registry) now() time.Time {
	if r.stamp != nil {
		return r.stamp()
	}
	return r.clock.Now()
}

// journalPut journals a deployment's current document and timestamps.
func (r *Registry) journalPut(name string) {
	if r.journal == nil {
		return
	}
	res := r.home.Find(name)
	if res == nil {
		return
	}
	r.journal.RecordPut(name, res.Document(), res.LastUpdate(), res.TerminationTime())
}

func (r *Registry) journalDelete(name string) {
	if r.journal != nil {
		r.journal.RecordDelete(name)
	}
}

// Restore re-installs a journaled deployment resource during crash
// recovery, bypassing validation, dynamic type registration, counters and
// notifications: the type resource's DeploymentRefs are replayed from the
// type registry's own journal, so no cross-registry fixup runs here.
func (r *Registry) Restore(name string, doc *xmlutil.Node, lut, term time.Time) {
	r.home.Restore(name, doc, lut, term)
}

// Adopt installs a replicated deployment entry as locally owned: placed
// like Restore, journaled like a registration, so a promoted replica
// survives this site's own restarts too.
func (r *Registry) Adopt(name string, doc *xmlutil.Node, lut, term time.Time) {
	r.Restore(name, doc, lut, term)
	r.journalPut(name)
}

// Timestamps returns a deployment resource's LastUpdateTime and
// termination time, the ordering fields replication compares copies on.
func (r *Registry) Timestamps(name string) (lut, term time.Time, ok bool) {
	res := r.home.Find(name)
	if res == nil {
		return time.Time{}, time.Time{}, false
	}
	return res.LastUpdate(), res.TerminationTime(), true
}

// Register records a deployment. If the concrete type is not yet known to
// the type registry, a minimal concrete type is registered dynamically.
func (r *Registry) Register(d *activity.Deployment) (epr.EPR, error) {
	r.registers.Inc()
	if err := d.Validate(); err != nil {
		return epr.EPR{}, err
	}
	t, ok := r.types.Lookup(d.Type)
	if !ok {
		// Dynamic registration of a new activity type.
		t = &activity.Type{Name: d.Type}
		if _, err := r.types.Register(t); err != nil {
			return epr.EPR{}, fmt.Errorf("adr: dynamic type registration: %w", err)
		}
	} else if t.Abstract {
		return epr.EPR{}, fmt.Errorf("adr: type %q is abstract and cannot have deployments", d.Type)
	}
	// Enforce the provider's max-deployments bound VO-wide as far as this
	// registry can see (its own records plus the type resource's refs).
	if t.MaxDeployments > 0 {
		if n := len(r.types.DeploymentRefs(d.Type)); n >= t.MaxDeployments {
			return epr.EPR{}, fmt.Errorf("adr: type %q reached its deployment limit (%d)",
				d.Type, t.MaxDeployments)
		}
	}
	if _, err := r.home.Create(d.Name, d.ToXML()); err != nil {
		return epr.EPR{}, err
	}
	e := r.home.EPR(d.Name)
	if err := r.types.AddDeploymentRef(d.Type, e); err != nil {
		r.home.Destroy(d.Name)
		return epr.EPR{}, err
	}
	r.journalPut(d.Name)
	r.broker.Publish(wsrf.TopicDeployment, d.Name, d.ToXML())
	return e, nil
}

// Get returns a deployment by name (hash-table path).
func (r *Registry) Get(name string) (*activity.Deployment, bool) {
	res := r.home.Find(name)
	if res == nil {
		return nil, false
	}
	var d *activity.Deployment
	var err error
	res.Read(func(doc *xmlutil.Node) { d, err = activity.DeploymentFromXML(doc) })
	if err != nil {
		return nil, false
	}
	return d, true
}

// GetDocument returns the raw property document of a deployment.
func (r *Registry) GetDocument(name string) (*xmlutil.Node, bool) {
	res := r.home.Find(name)
	if res == nil {
		return nil, false
	}
	return res.Document(), true
}

// LUT returns a deployment resource's LastUpdateTime.
func (r *Registry) LUT(name string) (time.Time, bool) {
	res := r.home.Find(name)
	if res == nil {
		return time.Time{}, false
	}
	return res.LastUpdate(), true
}

// ByType lists local deployments of the given concrete type.
func (r *Registry) ByType(typeName string) []*activity.Deployment {
	r.byType.Inc()
	var out []*activity.Deployment
	for _, res := range r.home.All() {
		var d *activity.Deployment
		var err error
		res.Read(func(doc *xmlutil.Node) { d, err = activity.DeploymentFromXML(doc) })
		if err == nil && d.Type == typeName {
			out = append(out, d)
		}
	}
	return out
}

// All returns every local deployment.
func (r *Registry) All() []*activity.Deployment {
	var out []*activity.Deployment
	for _, res := range r.home.All() {
		var d *activity.Deployment
		var err error
		res.Read(func(doc *xmlutil.Node) { d, err = activity.DeploymentFromXML(doc) })
		if err == nil {
			out = append(out, d)
		}
	}
	return out
}

// Names returns the registered deployment names, mirroring atr.Names —
// cheap existence checks (does this site own the entry?) that do not need
// the documents materialized.
func (r *Registry) Names() []string { return r.home.Keys() }

// Len reports the number of registered deployments.
func (r *Registry) Len() int { return r.home.Len() }

// Remove unregisters a deployment and clears its ref in the type resource.
func (r *Registry) Remove(name string) bool {
	r.removes.Inc()
	d, ok := r.Get(name)
	if !ok {
		return false
	}
	if !r.home.Destroy(name) {
		return false
	}
	r.types.RemoveDeploymentRef(d.Type, name)
	r.journalDelete(name)
	r.broker.Publish(wsrf.TopicResourceDestroyed, name, nil)
	return true
}

// UpdateMetrics is the Deployment Status Monitor's write path: it refreshes
// the deployment's metrics and bumps the resource's LastUpdateTime, which
// in turn revives caches holding this deployment.
func (r *Registry) UpdateMetrics(name string, m activity.Metrics) error {
	res := r.home.Find(name)
	if res == nil {
		return fmt.Errorf("adr: no such deployment %q", name)
	}
	var d *activity.Deployment
	var err error
	res.Read(func(doc *xmlutil.Node) { d, err = activity.DeploymentFromXML(doc) })
	if err != nil {
		return err
	}
	d.Metrics = m
	res.Replace(r.now(), d.ToXML())
	r.journalPut(name)
	// Refresh the EPR registered in the type resource (LUT changed).
	if err := r.types.AddDeploymentRef(d.Type, r.home.EPR(name)); err != nil {
		return err
	}
	r.broker.Publish(wsrf.TopicResourceUpdated, name, nil)
	return nil
}

// SetTermination schedules a deployment resource's expiry.
func (r *Registry) SetTermination(name string, at time.Time) error {
	res := r.home.Find(name)
	if res == nil {
		return fmt.Errorf("adr: no such deployment %q", name)
	}
	res.SetTerminationTime(at)
	r.journalPut(name)
	return nil
}

// SweepExpired destroys expired deployment resources.
func (r *Registry) SweepExpired() []string {
	// Collect types before destroying so refs can be cleaned.
	gone := r.home.SweepExpired()
	for _, name := range gone {
		r.journalDelete(name)
		r.broker.Publish(wsrf.TopicResourceDestroyed, name, nil)
	}
	return gone
}

// ExpireByType expires all deployments of a type now ("If an activity type
// expires, its deployments automatically expire"). Running instances are
// the execution engine's concern and finish independently.
func (r *Registry) ExpireByType(typeName string) []string {
	var gone []string
	for _, d := range r.ByType(typeName) {
		if r.home.Destroy(d.Name) {
			gone = append(gone, d.Name)
			r.journalDelete(d.Name)
			r.broker.Publish(wsrf.TopicResourceDestroyed, d.Name, nil)
		}
	}
	return gone
}

// EPR mints the endpoint reference of a deployment resource.
func (r *Registry) EPR(name string) epr.EPR { return r.home.EPR(name) }

// Mount exposes the registry over a transport server.
func (r *Registry) Mount(srv *transport.Server) {
	srv.RegisterService(ServiceName, map[string]transport.Handler{
		"Register": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			d, err := activity.DeploymentFromXML(body)
			if err != nil {
				return nil, err
			}
			e, err := r.Register(d)
			if err != nil {
				return nil, err
			}
			return e.ToXML("DeploymentEPR"), nil
		},
		"Get": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			doc, ok := r.GetDocument(textArg(body))
			if !ok {
				return nil, fmt.Errorf("Get: no such deployment %q", textArg(body))
			}
			return doc, nil
		},
		"GetLUT": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			lut, ok := r.LUT(textArg(body))
			if !ok {
				return nil, fmt.Errorf("GetLUT: no such deployment %q", textArg(body))
			}
			return xmlutil.NewNode("LUT", lut.Format(epr.TimeLayout)), nil
		},
		"GetDeployments": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			out := xmlutil.NewNode("Deployments")
			for _, d := range r.ByType(textArg(body)) {
				out.Add(d.ToXML())
			}
			return out, nil
		},
		"Remove": func(body *xmlutil.Node) (*xmlutil.Node, error) {
			if !r.Remove(textArg(body)) {
				return nil, fmt.Errorf("Remove: no such deployment")
			}
			return xmlutil.NewNode("Removed"), nil
		},
	})
}

func textArg(body *xmlutil.Node) string {
	if body == nil {
		return ""
	}
	return body.Text
}
