package adr

import (
	"strings"
	"testing"
	"time"

	"glare/internal/activity"
	"glare/internal/atr"
	"glare/internal/simclock"
	"glare/internal/transport"
	"glare/internal/xmlutil"
)

func fixture() (*Registry, *atr.Registry, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	types := atr.New("http://s1/wsrf/services/"+atr.ServiceName, v, nil)
	deps := New("http://s1/wsrf/services/"+ServiceName, types, v, nil)
	return deps, types, v
}

func jpovrayDep(name string) *activity.Deployment {
	return &activity.Deployment{
		Name: name, Type: "JPOVray", Kind: activity.KindExecutable,
		Site: "agrid1", Path: "/opt/glare/deployments/jpovray/bin/" + name,
		Home: "/opt/glare/deployments/jpovray",
	}
}

func TestRegisterRequiresOrCreatesType(t *testing.T) {
	deps, types, _ := fixture()
	// No type registered yet: the ADR requests dynamic registration.
	e, err := deps.Register(jpovrayDep("jpovray"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Key != "jpovray" {
		t.Fatalf("epr = %v", e)
	}
	if _, ok := types.Lookup("JPOVray"); !ok {
		t.Fatal("type was not dynamically registered")
	}
	// The deployment EPR is recorded in the type resource.
	refs := types.DeploymentRefs("JPOVray")
	if len(refs) != 1 || refs[0].Key != "jpovray" {
		t.Fatalf("type refs = %v", refs)
	}
}

func TestRegisterRejectsAbstractType(t *testing.T) {
	deps, types, _ := fixture()
	types.Register(&activity.Type{Name: "Imaging", Abstract: true})
	d := jpovrayDep("x")
	d.Type = "Imaging"
	if _, err := deps.Register(d); err == nil || !strings.Contains(err.Error(), "abstract") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterEnforcesMaxDeployments(t *testing.T) {
	deps, types, _ := fixture()
	types.Register(&activity.Type{Name: "JPOVray", MaxDeployments: 2})
	if _, err := deps.Register(jpovrayDep("d1")); err != nil {
		t.Fatal(err)
	}
	if _, err := deps.Register(jpovrayDep("d2")); err != nil {
		t.Fatal(err)
	}
	if _, err := deps.Register(jpovrayDep("d3")); err == nil {
		t.Fatal("limit not enforced")
	}
	// Removing one frees a slot.
	deps.Remove("d1")
	if _, err := deps.Register(jpovrayDep("d3")); err != nil {
		t.Fatalf("after remove: %v", err)
	}
}

func TestGetAndByType(t *testing.T) {
	deps, _, _ := fixture()
	deps.Register(jpovrayDep("jpovray"))
	svc := &activity.Deployment{
		Name: "WS-JPOVray", Type: "JPOVray", Kind: activity.KindService,
		Site: "agrid1", Address: "https://agrid1:8084/wsrf/services/WS-JPOVray",
	}
	deps.Register(svc)
	other := &activity.Deployment{
		Name: "wien", Type: "Wien2k", Kind: activity.KindExecutable, Path: "/x",
	}
	deps.Register(other)

	if d, ok := deps.Get("jpovray"); !ok || d.Kind != activity.KindExecutable {
		t.Fatal("get failed")
	}
	if _, ok := deps.Get("nope"); ok {
		t.Fatal("phantom get")
	}
	byType := deps.ByType("JPOVray")
	if len(byType) != 2 {
		t.Fatalf("byType = %d", len(byType))
	}
	if got := len(deps.All()); got != 3 {
		t.Fatalf("all = %d", got)
	}
	if deps.Len() != 3 {
		t.Fatalf("len = %d", deps.Len())
	}
}

func TestDuplicateRegistration(t *testing.T) {
	deps, _, _ := fixture()
	deps.Register(jpovrayDep("d"))
	if _, err := deps.Register(jpovrayDep("d")); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestUpdateMetricsBumpsLUT(t *testing.T) {
	deps, types, v := fixture()
	deps.Register(jpovrayDep("jpovray"))
	lut1, _ := deps.LUT("jpovray")
	v.Advance(time.Second)
	err := deps.UpdateMetrics("jpovray", activity.Metrics{
		LastExecutionTime: 900 * time.Millisecond,
		LastReturnCode:    0,
		Invocations:       1,
		LastInvocation:    v.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	lut2, _ := deps.LUT("jpovray")
	if !lut2.After(lut1) {
		t.Fatal("LUT not bumped")
	}
	d, _ := deps.Get("jpovray")
	if d.Metrics.Invocations != 1 {
		t.Fatalf("metrics = %+v", d.Metrics)
	}
	// The ref in the type registry carries the fresh LUT.
	refs := types.DeploymentRefs("JPOVray")
	if len(refs) != 1 || !refs[0].LastUpdateTime.Equal(lut2) {
		t.Fatalf("type ref LUT = %v, want %v", refs[0].LastUpdateTime, lut2)
	}
	if err := deps.UpdateMetrics("missing", activity.Metrics{}); err == nil {
		t.Fatal("missing deployment accepted")
	}
}

func TestRemoveClearsTypeRef(t *testing.T) {
	deps, types, _ := fixture()
	deps.Register(jpovrayDep("jpovray"))
	if !deps.Remove("jpovray") {
		t.Fatal("remove failed")
	}
	if deps.Remove("jpovray") {
		t.Fatal("double remove")
	}
	if len(types.DeploymentRefs("JPOVray")) != 0 {
		t.Fatal("type ref not cleared")
	}
}

func TestExpiryAndCascade(t *testing.T) {
	deps, _, v := fixture()
	deps.Register(jpovrayDep("d1"))
	deps.Register(jpovrayDep("d2"))
	if err := deps.SetTermination("d1", v.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := deps.SetTermination("nope", v.Now()); err == nil {
		t.Fatal("missing accepted")
	}
	v.Advance(2 * time.Minute)
	gone := deps.SweepExpired()
	if len(gone) != 1 || gone[0] != "d1" {
		t.Fatalf("swept %v", gone)
	}
	// Type-level cascade: expire all deployments of a type.
	gone = deps.ExpireByType("JPOVray")
	if len(gone) != 1 || gone[0] != "d2" {
		t.Fatalf("cascade %v", gone)
	}
	if deps.Len() != 0 {
		t.Fatal("deployments remain")
	}
}

func TestMountedService(t *testing.T) {
	deps, _, _ := fixture()
	srv := transport.NewServer()
	deps.Mount(srv)
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := transport.NewClient(nil)
	url := srv.ServiceURL(ServiceName)

	if _, err := cli.Call(url, "Register", jpovrayDep("jpovray").ToXML()); err != nil {
		t.Fatal(err)
	}
	doc, err := cli.Call(url, "Get", xmlutil.NewNode("Name", "jpovray"))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := activity.DeploymentFromXML(doc); err != nil || d.Name != "jpovray" {
		t.Fatalf("remote get: %v %v", d, err)
	}
	lst, err := cli.Call(url, "GetDeployments", xmlutil.NewNode("Type", "JPOVray"))
	if err != nil || len(lst.All("ActivityDeployment")) != 1 {
		t.Fatalf("GetDeployments: %v %v", lst, err)
	}
	if _, err := cli.Call(url, "GetLUT", xmlutil.NewNode("Name", "jpovray")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(url, "Get", xmlutil.NewNode("Name", "zzz")); err == nil {
		t.Fatal("missing must fault")
	}
	if _, err := cli.Call(url, "Remove", xmlutil.NewNode("Name", "jpovray")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(url, "Remove", xmlutil.NewNode("Name", "jpovray")); err == nil {
		t.Fatal("double remove must fault")
	}
}
