// Package epr implements WS-Addressing-style Endpoint References as used
// throughout GLARE (paper Fig. 6).
//
// An EPR names a WS-Resource: the service Address plus a resource key
// carried in ReferenceProperties. GLARE deployment EPRs additionally carry
// a LastUpdateTime (LUT) reference property that the Cache Refresher uses
// to revive cached deployment resources.
package epr

import (
	"fmt"
	"time"

	"glare/internal/xmlutil"
)

// TimeLayout is the wire format of LastUpdateTime values.
const TimeLayout = time.RFC3339Nano

// EPR is an endpoint reference to a WS-Resource.
type EPR struct {
	// Address is the service URL, e.g.
	// https://138.232.1.2:8084/wsrf/services/ActivityDeploymentRegistry.
	Address string
	// KeyName is the reference-property element naming the resource key,
	// e.g. "ActivityDeploymentKey" or "ActivityTypeKey".
	KeyName string
	// Key is the resource key value, e.g. "jpovray".
	Key string
	// LastUpdateTime is refreshed by the Deployment Status Monitor; zero
	// means the property is absent.
	LastUpdateTime time.Time
	// Extra holds any additional reference properties.
	Extra map[string]string
}

// New builds an EPR for a resource at the given service address.
func New(address, keyName, key string) EPR {
	return EPR{Address: address, KeyName: keyName, Key: key}
}

// IsZero reports whether the EPR is unset.
func (e EPR) IsZero() bool { return e.Address == "" && e.Key == "" }

// String renders a short human-readable form.
func (e EPR) String() string {
	return fmt.Sprintf("%s#%s=%s", e.Address, e.KeyName, e.Key)
}

// Touch returns a copy with LastUpdateTime set to now.
func (e EPR) Touch(now time.Time) EPR {
	e.LastUpdateTime = now
	return e
}

// ToXML renders the EPR as a property-document node with the given element
// name (e.g. "DeploymentEPR").
func (e EPR) ToXML(elem string) *xmlutil.Node {
	n := xmlutil.NewNode(elem)
	n.Elem("Address", e.Address)
	rp := n.Elem("ReferenceProperties")
	if e.KeyName != "" {
		rp.Elem(e.KeyName, e.Key)
	}
	if !e.LastUpdateTime.IsZero() {
		rp.Elem("LastUpdateTime", e.LastUpdateTime.Format(TimeLayout))
	}
	for k, v := range e.Extra {
		rp.Elem(k, v)
	}
	n.Elem("ReferenceParameters")
	return n
}

// FromXML parses an EPR from a node produced by ToXML. keyName selects
// which reference property is the resource key; when empty, the first
// property other than LastUpdateTime is used.
func FromXML(n *xmlutil.Node, keyName string) (EPR, error) {
	if n == nil {
		return EPR{}, fmt.Errorf("epr: nil node")
	}
	e := EPR{Address: n.ChildText("Address"), KeyName: keyName}
	if e.Address == "" {
		return EPR{}, fmt.Errorf("epr: missing Address")
	}
	rp := n.First("ReferenceProperties")
	if rp == nil {
		return e, nil
	}
	for _, c := range rp.Children {
		switch {
		case c.Name == "LastUpdateTime":
			t, err := time.Parse(TimeLayout, c.Text)
			if err != nil {
				return EPR{}, fmt.Errorf("epr: bad LastUpdateTime %q: %w", c.Text, err)
			}
			e.LastUpdateTime = t
		case keyName != "" && c.Name == keyName:
			e.Key = c.Text
		case keyName == "" && e.Key == "":
			e.KeyName = c.Name
			e.Key = c.Text
		default:
			if e.Extra == nil {
				e.Extra = map[string]string{}
			}
			e.Extra[c.Name] = c.Text
		}
	}
	if e.Key == "" {
		return EPR{}, fmt.Errorf("epr: missing resource key %q", keyName)
	}
	return e, nil
}
