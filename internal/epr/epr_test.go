package epr

import (
	"testing"
	"time"

	"glare/internal/xmlutil"
)

func TestRoundTrip(t *testing.T) {
	lut := time.Date(2005, 11, 12, 10, 30, 0, 0, time.UTC)
	e := New("https://138.232.1.2:8084/wsrf/services/ActivityDeploymentRegistry",
		"ActivityDeploymentKey", "jpovray")
	e.LastUpdateTime = lut
	e.Extra = map[string]string{"Site": "altix1.uibk"}

	n := e.ToXML("DeploymentEPR")
	if n.Name != "DeploymentEPR" {
		t.Fatalf("element = %q", n.Name)
	}
	got, err := FromXML(n, "ActivityDeploymentKey")
	if err != nil {
		t.Fatalf("FromXML: %v", err)
	}
	if got.Address != e.Address || got.Key != "jpovray" || !got.LastUpdateTime.Equal(lut) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Extra["Site"] != "altix1.uibk" {
		t.Fatalf("extra lost: %v", got.Extra)
	}
}

func TestRoundTripThroughSerializedXML(t *testing.T) {
	e := New("http://h:1/wsrf/services/S", "K", "v1")
	n, err := xmlutil.ParseString(e.ToXML("EPR").String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromXML(n, "K")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "v1" {
		t.Fatalf("key = %q", got.Key)
	}
}

func TestFromXMLInfersKeyName(t *testing.T) {
	e := New("http://x/wsrf/services/Y", "SomeKey", "abc")
	got, err := FromXML(e.ToXML("EPR"), "")
	if err != nil {
		t.Fatal(err)
	}
	if got.KeyName != "SomeKey" || got.Key != "abc" {
		t.Fatalf("inferred = %q/%q", got.KeyName, got.Key)
	}
}

func TestFromXMLErrors(t *testing.T) {
	if _, err := FromXML(nil, "K"); err == nil {
		t.Fatal("nil node must error")
	}
	n := xmlutil.MustParse(`<EPR><ReferenceProperties><K>v</K></ReferenceProperties></EPR>`)
	if _, err := FromXML(n, "K"); err == nil {
		t.Fatal("missing Address must error")
	}
	n2 := xmlutil.MustParse(`<EPR><Address>http://x</Address><ReferenceProperties/></EPR>`)
	if _, err := FromXML(n2, "K"); err == nil {
		t.Fatal("missing key must error")
	}
	n3 := xmlutil.MustParse(`<EPR><Address>http://x</Address>
	  <ReferenceProperties><K>v</K><LastUpdateTime>garbage</LastUpdateTime></ReferenceProperties></EPR>`)
	if _, err := FromXML(n3, "K"); err == nil {
		t.Fatal("bad LastUpdateTime must error")
	}
}

func TestTouchAndZero(t *testing.T) {
	var e EPR
	if !e.IsZero() {
		t.Fatal("zero EPR must report IsZero")
	}
	e = New("http://x/wsrf/services/Y", "K", "k")
	if e.IsZero() {
		t.Fatal("non-zero EPR reported zero")
	}
	now := time.Now()
	if got := e.Touch(now); !got.LastUpdateTime.Equal(now) {
		t.Fatal("Touch did not set LUT")
	}
	if !e.LastUpdateTime.IsZero() {
		t.Fatal("Touch must not mutate receiver")
	}
}

func TestString(t *testing.T) {
	e := New("http://x/wsrf/services/Y", "K", "k")
	if e.String() != "http://x/wsrf/services/Y#K=k" {
		t.Fatalf("String = %q", e.String())
	}
}
