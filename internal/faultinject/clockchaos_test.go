package faultinject

import (
	"testing"
	"time"

	"glare/internal/simclock"
)

// A site's skewed view is keyed by NAME: rebuilding the site (a restart
// or replacement) hands back the same still-displaced view, because
// rebooting a machine does not fix its NTP.
func TestClockChaosViewSurvivesRebuild(t *testing.T) {
	base := simclock.NewVirtual(time.Unix(1_000_000, 0))
	cc := NewClockChaos()

	v1 := cc.View("agrid01.uibk", base)
	if !cc.SkewSite("agrid01.uibk", 5*time.Minute) {
		t.Fatal("SkewSite refused a site built through View")
	}
	if got := v1.Now().Sub(base.Now()); got != 5*time.Minute {
		t.Fatalf("view displaced by %v, want 5m", got)
	}

	// The rebuilt site reads through the same view, skew intact.
	v2 := cc.View("agrid01.uibk", base)
	if got := v2.Now().Sub(base.Now()); got != 5*time.Minute {
		t.Fatalf("rebuilt view displaced by %v, want the surviving 5m", got)
	}
	if cc.Offset("agrid01.uibk") != 5*time.Minute {
		t.Fatalf("Offset = %v, want 5m", cc.Offset("agrid01.uibk"))
	}

	cc.Restore("agrid01.uibk")
	if got := v2.Now().Sub(base.Now()); got != 0 {
		t.Fatalf("restored view still displaced by %v", got)
	}
}

// SkewSite/DriftSite on a never-built site must refuse rather than
// silently arm a view nobody reads.
func TestClockChaosUnknownSiteRefused(t *testing.T) {
	cc := NewClockChaos()
	if cc.SkewSite("ghost.uibk", time.Minute) {
		t.Fatal("SkewSite accepted a site never built through View")
	}
	if cc.DriftSite("ghost.uibk", 0.001) {
		t.Fatal("DriftSite accepted a site never built through View")
	}
	if cc.Offset("ghost.uibk") != 0 {
		t.Fatal("Offset non-zero for an unknown site")
	}
}

// ScheduleSkew is deterministic in (seed, view set): the same seed
// yields the same per-site offsets regardless of View-call order, a
// different seed yields a different schedule, and every offset stays
// inside ±max with drift armed in the offset's direction.
func TestClockChaosScheduleSkewDeterministic(t *testing.T) {
	const max = 10 * time.Minute
	names := []string{"agrid03.uibk", "agrid01.uibk", "agrid02.uibk"}

	build := func(order []string) (*ClockChaos, simclock.Clock) {
		base := simclock.NewVirtual(time.Unix(1_000_000, 0))
		cc := NewClockChaos()
		for _, n := range order {
			cc.View(n, base)
		}
		return cc, base
	}

	ccA, _ := build(names)
	ccB, _ := build([]string{"agrid01.uibk", "agrid02.uibk", "agrid03.uibk"})
	a := ccA.ScheduleSkew(77, max)
	b := ccB.ScheduleSkew(77, max)
	if len(a) != len(names) {
		t.Fatalf("schedule covered %d sites, want %d", len(a), len(names))
	}
	for n, off := range a {
		if b[n] != off {
			t.Fatalf("site %s drew %v and %v from the same seed", n, off, b[n])
		}
		if off > max || off < -max {
			t.Fatalf("site %s offset %v outside ±%v", n, off, max)
		}
		if ccA.Offset(n) != off {
			t.Fatalf("site %s applied %v, schedule says %v", n, ccA.Offset(n), off)
		}
	}

	ccC, _ := build(names)
	c := ccC.ScheduleSkew(78, max)
	same := true
	for n := range a {
		if c[n] != a[n] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 77 and 78 drew identical schedules")
	}
}

// Drift armed by the schedule keeps displaced clocks wandering in the
// offset's direction as base time advances.
func TestClockChaosScheduleSkewDriftDirection(t *testing.T) {
	base := simclock.NewVirtual(time.Unix(1_000_000, 0))
	cc := NewClockChaos()
	views := map[string]simclock.Clock{}
	for _, n := range []string{"agrid01.uibk", "agrid02.uibk", "agrid03.uibk", "agrid04.uibk"} {
		views[n] = cc.View(n, base)
	}
	offsets := cc.ScheduleSkew(2006, 10*time.Minute)

	before := map[string]time.Duration{}
	for n, v := range views {
		before[n] = v.Now().Sub(base.Now())
	}
	base.Advance(10 * time.Hour)
	for n, v := range views {
		disp := v.Now().Sub(base.Now())
		moved := disp - before[n]
		switch {
		case offsets[n] > 0 && moved <= 0:
			t.Fatalf("site %s offset %v but displacement moved %v after 10h", n, offsets[n], moved)
		case offsets[n] < 0 && moved >= 0:
			t.Fatalf("site %s offset %v but displacement moved %v after 10h", n, offsets[n], moved)
		}
	}
}
