package faultinject

import "sync"

// StoreCrasher is the durable-store counterpart of the transport injector:
// it kills a store mid-append, leaving a torn frame on disk exactly the
// way a power cut would, so crash recovery is provable in-process (and
// under -race). Plug it into store.Options.AppendHook.
//
//	crasher := faultinject.NewStoreCrasher()
//	crasher.ArmAfter(10, 0.5) // 10th append writes half a frame, then dies
//	st, _ := store.Open(store.Options{Dir: dir, AppendHook: crasher.Hook})
type StoreCrasher struct {
	mu        sync.Mutex
	countdown int     // appends left before the crash; 0 = disarmed
	cut       float64 // fraction of the fatal frame that reaches disk
	appends   int
	crashed   bool
}

// NewStoreCrasher returns a disarmed crasher; every append passes through
// until ArmAfter is called.
func NewStoreCrasher() *StoreCrasher { return &StoreCrasher{} }

// ArmAfter schedules the crash on the n-th append from now (n >= 1). cut
// is the fraction of that append's frame written before the "power cut":
// 0 loses the record entirely, 0.5 tears it mid-frame, 1 lands the whole
// frame but dies before any fsync.
func (c *StoreCrasher) ArmAfter(n int, cut float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if cut < 0 {
		cut = 0
	}
	if cut > 1 {
		cut = 1
	}
	c.countdown, c.cut, c.crashed = n, cut, false
}

// Hook is the store.Options.AppendHook implementation.
func (c *StoreCrasher) Hook(frame []byte) (keep int, crash bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appends++
	if c.countdown == 0 {
		return len(frame), false
	}
	c.countdown--
	if c.countdown > 0 {
		return len(frame), false
	}
	c.crashed = true
	return int(float64(len(frame)) * c.cut), true
}

// Crashed reports whether the armed crash has fired.
func (c *StoreCrasher) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Appends returns how many appends the hook has observed.
func (c *StoreCrasher) Appends() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.appends
}
