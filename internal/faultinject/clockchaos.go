package faultinject

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"glare/internal/simclock"
)

// ClockChaos injects clock skew and drift as per-site faults. Each site
// reads time through its own simclock.Skewed view of the shared base clock;
// ClockChaos owns those views keyed by site name, so an injected skew
// survives a site restart the same way deploy chaos does — the rebuilt site
// gets the same (still-skewed) view back.
type ClockChaos struct {
	mu    sync.Mutex
	views map[string]*simclock.Skewed
}

// NewClockChaos creates an injector with every site's clock still true.
func NewClockChaos() *ClockChaos {
	return &ClockChaos{views: make(map[string]*simclock.Skewed)}
}

// View returns the named site's clock view over base, creating an
// undisplaced one on first use. The VO builder routes every site's clock
// through here so skew armed before or after a restart both take hold.
func (c *ClockChaos) View(site string, base simclock.Clock) simclock.Clock {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.views[site]
	if !ok {
		v = simclock.NewSkewed(base)
		c.views[site] = v
	}
	return v
}

// SkewSite displaces the named site's wall clock by offset (negative runs
// slow). The site must have been built through View first.
func (c *ClockChaos) SkewSite(site string, offset time.Duration) bool {
	c.mu.Lock()
	v := c.views[site]
	c.mu.Unlock()
	if v == nil {
		return false
	}
	v.SetOffset(offset)
	return true
}

// DriftSite makes the named site's clock wander at rate seconds gained per
// second (negative falls behind), on top of any fixed offset.
func (c *ClockChaos) DriftSite(site string, rate float64) bool {
	c.mu.Lock()
	v := c.views[site]
	c.mu.Unlock()
	if v == nil {
		return false
	}
	v.SetDrift(rate)
	return true
}

// Offset reports the named site's current total displacement from the base
// clock; zero for sites never skewed.
func (c *ClockChaos) Offset(site string) time.Duration {
	c.mu.Lock()
	v := c.views[site]
	c.mu.Unlock()
	if v == nil {
		return 0
	}
	return v.Offset()
}

// Restore zeroes the named site's offset and drift.
func (c *ClockChaos) Restore(site string) {
	c.mu.Lock()
	v := c.views[site]
	c.mu.Unlock()
	if v == nil {
		return
	}
	v.SetDrift(0)
	v.SetOffset(0)
}

// ScheduleSkew arms a deterministic seeded skew schedule across every view
// built so far: each site gets an offset drawn uniformly from [-max, +max]
// and a small proportional drift in the same direction, so clocks both
// disagree and keep wandering apart. It returns the offsets applied, keyed
// by site name.
func (c *ClockChaos) ScheduleSkew(seed int64, max time.Duration) map[string]time.Duration {
	c.mu.Lock()
	sites := make([]string, 0, len(c.views))
	for s := range c.views {
		sites = append(sites, s)
	}
	c.mu.Unlock()
	sort.Strings(sites) // deterministic draw order for a given view set

	rng := rand.New(rand.NewSource(seed))
	applied := make(map[string]time.Duration, len(sites))
	for _, s := range sites {
		off := time.Duration(rng.Int63n(int64(2*max+1))) - max
		c.SkewSite(s, off)
		// Drift at up to 0.1% in the offset's direction: a minute of extra
		// wander per ~17 hours of grid time, enough to keep stamps moving.
		rate := rng.Float64() * 0.001
		if off < 0 {
			rate = -rate
		}
		c.DriftSite(s, rate)
		applied[s] = off
	}
	return applied
}
