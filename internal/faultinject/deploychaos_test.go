package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDeployChaosFailBudget(t *testing.T) {
	c := NewDeployChaos()
	c.FailStep("Wien2k", "Download", 2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		err := c.Step(ctx, "Wien2k", "Download")
		var bf *BuildFault
		if !errors.As(err, &bf) || bf.Mode != BuildFail || !bf.Transient() || bf.BuildCrash() {
			t.Fatalf("fire %d: %v", i+1, err)
		}
	}
	if err := c.Step(ctx, "Wien2k", "Download"); err != nil {
		t.Fatalf("exhausted rule still fired: %v", err)
	}
	if err := c.Step(ctx, "Wien2k", "Expand"); err != nil {
		t.Fatalf("unrelated step hit: %v", err)
	}
}

func TestDeployChaosCrashIsOneShot(t *testing.T) {
	c := NewDeployChaos()
	c.CrashStep("JPOVray", "Deploy")
	err := c.Step(context.Background(), "JPOVray", "Deploy")
	var bf *BuildFault
	if !errors.As(err, &bf) || !bf.BuildCrash() || bf.Transient() {
		t.Fatalf("crash fired as %v", err)
	}
	if err := c.Step(context.Background(), "JPOVray", "Deploy"); err != nil {
		t.Fatalf("one-shot crash fired twice: %v", err)
	}
}

func TestDeployChaosWildcards(t *testing.T) {
	c := NewDeployChaos()
	c.FailStep("*", "Download", 1)
	if err := c.Step(context.Background(), "Anything", "Download"); err == nil {
		t.Fatal("wildcard type did not match")
	}
	c.Clear()
	c.FailStep("Wien2k", "*", 1)
	if err := c.Step(context.Background(), "Wien2k", "Init"); err == nil {
		t.Fatal("wildcard step did not match")
	}
	if err := c.Step(context.Background(), "Invmod", "Init"); err != nil {
		t.Fatalf("wildcard leaked across types: %v", err)
	}
}

func TestDeployChaosHangBlocksUntilContext(t *testing.T) {
	c := NewDeployChaos()
	c.HangStep("Wien2k", "Configure", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Step(ctx, "Wien2k", "Configure")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang ended with %v, want deadline exceeded", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("hang returned before the context deadline")
	}
}

func TestDeployChaosDelayThenProceeds(t *testing.T) {
	c := NewDeployChaos()
	c.DelayStep("Wien2k", "Expand", 20*time.Millisecond)
	start := time.Now()
	if err := c.Step(context.Background(), "Wien2k", "Expand"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("delay did not stall the step")
	}
	// Delays persist until Clear.
	if err := c.Step(context.Background(), "Wien2k", "Expand"); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	start = time.Now()
	if err := c.Step(context.Background(), "Wien2k", "Expand"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("Clear did not disarm the delay")
	}
}
