package faultinject

import (
	"net/http"
	"testing"
)

// sourced builds a round tripper carrying a source identity, backed by an
// always-200 backend.
func sourced(in *Injector, source string, hits *int) http.RoundTripper {
	return in.WrapSource(source)(okBase(hits))
}

func TestPartitionSeversBothDirections(t *testing.T) {
	in := New(1)
	hits := 0
	a := sourced(in, "a:1", &hits)
	b := sourced(in, "b:2", &hits)
	in.Partition([]string{"a:1"}, []string{"b:2", "c:3"})

	// Cross-half traffic is dropped, in both directions.
	if _, err := get(t, a, "http://b:2/x", 0); err == nil {
		t.Fatal("a→b crossed the partition")
	}
	if _, err := get(t, b, "http://a:1/x", 0); err == nil {
		t.Fatal("b→a crossed the partition")
	}
	if hits != 0 {
		t.Fatalf("severed traffic reached a backend %d times", hits)
	}
	// Traffic within a half flows normally.
	if _, err := get(t, b, "http://c:3/x", 0); err != nil {
		t.Fatalf("b→c within a half failed: %v", err)
	}
	// The severed requests count as drops on the destination.
	if st := in.Stats("a:1"); st.Dropped != 1 {
		t.Fatalf("stats(a:1) = %+v", st)
	}
}

func TestPartitionIgnoresSourcelessClients(t *testing.T) {
	in := New(1)
	in.Partition([]string{"a:1"}, []string{"b:2"})
	admin := in.Wrap(okBase(nil)) // no source identity
	if _, err := get(t, admin, "http://a:1/x", 0); err != nil {
		t.Fatalf("admin→a failed: %v", err)
	}
	if _, err := get(t, admin, "http://b:2/x", 0); err != nil {
		t.Fatalf("admin→b failed: %v", err)
	}
	if in.Partitioned("", "b:2") {
		t.Fatal("sourceless request reported as severed")
	}
	if !in.Partitioned("a:1", "b:2") || !in.Partitioned("b:2", "a:1") {
		t.Fatal("Partitioned must report both directions severed")
	}
}

func TestHealRestoresCrossHalfTraffic(t *testing.T) {
	in := New(1)
	a := sourced(in, "a:1", nil)
	in.Partition([]string{"a:1"}, []string{"b:2"})
	if _, err := get(t, a, "http://b:2/x", 0); err == nil {
		t.Fatal("partition not active")
	}
	in.Heal()
	if _, err := get(t, a, "http://b:2/x", 0); err != nil {
		t.Fatalf("healed link still severed: %v", err)
	}
	if in.Partitioned("a:1", "b:2") {
		t.Fatal("Partitioned still true after Heal")
	}
}

func TestPartitionComposesWithRules(t *testing.T) {
	in := New(1)
	a := sourced(in, "a:1", nil)
	in.Partition([]string{"a:1"}, []string{"b:2"})
	in.Drop("c:3") // per-dest rule on a same-side destination
	if _, err := get(t, a, "http://c:3/x", 0); err == nil {
		t.Fatal("per-dest rule should still apply to traffic the partition lets through")
	}
	// A new Partition replaces the previous halves entirely.
	in.Partition([]string{"d:4"}, []string{"e:5"})
	if _, err := get(t, a, "http://b:2/x", 0); err != nil {
		t.Fatalf("old partition survived replacement: %v", err)
	}
}
