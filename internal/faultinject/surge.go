// Load-surge injection: where the rest of this package breaks the
// network under a request, Surge breaks the *arrival rate* — it floods a
// target with concurrent closed-loop clients, the ingredient overload
// experiments need (paper Fig. 10/11: many schedulers hammering one
// community index). Each simulated client issues its operation, waits
// for the verdict, and immediately issues the next, so offered load is
// Clients divided by the per-request latency — exactly the behaviour of
// N impatient schedulers, and self-throttling enough that a shedding
// server bounds the flood instead of drowning in it.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SurgeStats is a snapshot of a surge's progress.
type SurgeStats struct {
	// Issued counts operations started (and, closed-loop, finished).
	Issued uint64
	// Failed counts operations whose do() returned an error.
	Failed uint64
}

// Surge floods a target with Clients concurrent closed-loop callers.
type Surge struct {
	clients int
	do      func(ctx context.Context) error
	ramp    time.Duration

	issued atomic.Uint64
	failed atomic.Uint64

	// onResult, when set, observes every operation's verdict — the hook
	// workload.Flood uses to classify sheds vs expiries vs goodput.
	onResult func(err error)

	mu     sync.Mutex
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewSurge prepares a surge of clients concurrent callers of do. The
// surge is inert until Start.
func NewSurge(clients int, do func(ctx context.Context) error) *Surge {
	if clients <= 0 {
		clients = 1
	}
	return &Surge{clients: clients, do: do}
}

// OnResult registers a per-operation observer, called after every do()
// returns with its error (nil on success). Must be set before Start.
func (s *Surge) OnResult(fn func(err error)) { s.onResult = fn }

// SetRamp staggers client starts evenly across d instead of unleashing
// the whole fleet in one instant. Real client hordes do not arrive
// phase-locked, and a synchronized burst makes a flood lumpier (and
// easier on the target between bursts) than the offered load implies.
// Must be set before Start.
func (s *Surge) SetRamp(d time.Duration) { s.ramp = d }

// Start launches the flood. Each client loops do() until Stop (or the
// parent context) cancels; a failed operation does not stop its client —
// real schedulers retry, and an overload experiment needs the pressure
// to persist through shedding.
func (s *Surge) Start(parent context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return // already running
	}
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	s.cancel = cancel
	for i := 0; i < s.clients; i++ {
		s.wg.Add(1)
		delay := time.Duration(0)
		if s.ramp > 0 {
			delay = s.ramp * time.Duration(i) / time.Duration(s.clients)
		}
		go func() {
			defer s.wg.Done()
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return
				}
			}
			for ctx.Err() == nil {
				err := s.do(ctx)
				if ctx.Err() != nil && err != nil {
					return // shutdown race: don't count the aborted call
				}
				s.issued.Add(1)
				if err != nil {
					s.failed.Add(1)
				}
				if s.onResult != nil {
					s.onResult(err)
				}
			}
		}()
	}
}

// Stop cancels every client and waits for in-flight operations to
// drain, then reports the final tally. Safe to call more than once.
func (s *Surge) Stop() SurgeStats {
	s.mu.Lock()
	cancel := s.cancel
	s.cancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
	return s.Stats()
}

// Stats snapshots progress without stopping the surge.
func (s *Surge) Stats() SurgeStats {
	return SurgeStats{Issued: s.issued.Load(), Failed: s.failed.Load()}
}
