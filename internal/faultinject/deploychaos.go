package faultinject

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BuildMode is the kind of fault injected into one deployment step.
type BuildMode int

const (
	// BuildFail makes the step return a transient error (a torn transfer,
	// a flaky installer) that per-step retry may absorb.
	BuildFail BuildMode = iota + 1
	// BuildCrash simulates the site daemon dying mid-build: the engine
	// must abandon the build immediately, leaving its checkpoints intact
	// for resume after restart.
	BuildCrash
	// BuildHang blocks the step until the engine's watchdog kills it.
	BuildHang
	// BuildDelay stalls the step for a fixed real-time duration, then lets
	// it proceed — enough to overlap concurrent duplicate requests.
	BuildDelay
)

// String renders the mode name.
func (m BuildMode) String() string {
	switch m {
	case BuildFail:
		return "fail"
	case BuildCrash:
		return "crash"
	case BuildHang:
		return "hang"
	case BuildDelay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// BuildFault is the error a DeployChaos injection produces. The deployment
// engine recognizes it structurally (BuildCrash/Transient methods), so rdm
// does not import this package.
type BuildFault struct {
	TypeName string
	Step     string
	Mode     BuildMode
}

// Error implements the error interface.
func (e *BuildFault) Error() string {
	return fmt.Sprintf("faultinject: %s injected at step %s of %s build", e.Mode, e.Step, e.TypeName)
}

// BuildCrash reports whether this fault simulates process death.
func (e *BuildFault) BuildCrash() bool { return e.Mode == BuildCrash }

// Transient reports whether this fault models a retryable condition.
func (e *BuildFault) Transient() bool { return e.Mode == BuildFail }

type buildRule struct {
	mode      BuildMode
	delay     time.Duration
	remaining int // <0 = unlimited
}

// DeployChaos injects faults into deployment steps. The engine calls Step
// before executing each build step; armed rules fire by (type, step) key.
// A "*" type or step matches any.
type DeployChaos struct {
	mu    sync.Mutex
	rules map[string]*buildRule
}

// NewDeployChaos creates an injector with no armed rules.
func NewDeployChaos() *DeployChaos {
	return &DeployChaos{rules: make(map[string]*buildRule)}
}

func chaosKey(typeName, step string) string { return typeName + "\x00" + step }

// FailStep arms a transient failure on the step for the next n executions.
func (c *DeployChaos) FailStep(typeName, step string, n int) {
	c.arm(typeName, step, &buildRule{mode: BuildFail, remaining: n})
}

// CrashStep arms a one-shot simulated daemon crash on the step.
func (c *DeployChaos) CrashStep(typeName, step string) {
	c.arm(typeName, step, &buildRule{mode: BuildCrash, remaining: 1})
}

// HangStep makes the step hang until the engine's watchdog kills it, for
// the next n executions.
func (c *DeployChaos) HangStep(typeName, step string, n int) {
	c.arm(typeName, step, &buildRule{mode: BuildHang, remaining: n})
}

// DelayStep stalls the step for d (real time) on every execution until
// Clear.
func (c *DeployChaos) DelayStep(typeName, step string, d time.Duration) {
	c.arm(typeName, step, &buildRule{mode: BuildDelay, delay: d, remaining: -1})
}

// Clear disarms every rule.
func (c *DeployChaos) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = make(map[string]*buildRule)
}

func (c *DeployChaos) arm(typeName, step string, r *buildRule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[chaosKey(typeName, step)] = r
}

// Step is the engine hook: called with the build's type and step name
// before the step runs. It returns nil to proceed, or the injected fault.
// Hangs block on ctx, so the caller's watchdog deadline bounds them.
func (c *DeployChaos) Step(ctx context.Context, typeName, step string) error {
	c.mu.Lock()
	r := c.rules[chaosKey(typeName, step)]
	if r == nil {
		r = c.rules[chaosKey(typeName, "*")]
	}
	if r == nil {
		r = c.rules[chaosKey("*", step)]
	}
	if r == nil || r.remaining == 0 {
		c.mu.Unlock()
		return nil
	}
	if r.remaining > 0 {
		r.remaining--
	}
	mode, delay := r.mode, r.delay
	c.mu.Unlock()

	switch mode {
	case BuildDelay:
		select {
		case <-time.After(delay):
			return nil
		case <-ctx.Done():
			return fmt.Errorf("faultinject: step %s of %s killed mid-delay: %w", step, typeName, ctx.Err())
		}
	case BuildHang:
		<-ctx.Done()
		return fmt.Errorf("faultinject: step %s of %s hung: %w", step, typeName, ctx.Err())
	default:
		return &BuildFault{TypeName: typeName, Step: step, Mode: mode}
	}
}
