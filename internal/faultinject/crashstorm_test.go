package faultinject

import (
	"fmt"
	"reflect"
	"testing"
)

// The storm must be reproducible: same seed, same kill schedule.
func TestCrashStormDeterministicSchedule(t *testing.T) {
	run := func() ([]string, []int) {
		var log []string
		cs := &CrashStorm{
			Register: func(i int) (string, error) {
				log = append(log, fmt.Sprintf("reg%d", i))
				return fmt.Sprintf("T%d", i), nil
			},
			Kill: func(site int) error {
				log = append(log, fmt.Sprintf("kill%d", site))
				return nil
			},
			Victims:       []int{3, 4, 5},
			Kills:         2,
			Registrations: 10,
			Seed:          42,
		}
		if err := cs.Run(); err != nil {
			t.Fatal(err)
		}
		return log, cs.Killed()
	}
	log1, killed1 := run()
	log2, killed2 := run()
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("schedule not deterministic:\n%v\n%v", log1, log2)
	}
	if len(killed1) != 2 || !reflect.DeepEqual(killed1, killed2) {
		t.Fatalf("kills not deterministic: %v vs %v", killed1, killed2)
	}
}

// Only acknowledged registrations enter the log Verify replays.
func TestCrashStormVerifyReplaysOnlyAcked(t *testing.T) {
	cs := &CrashStorm{
		Register: func(i int) (string, error) {
			if i%2 == 1 {
				return "", fmt.Errorf("no quorum")
			}
			return fmt.Sprintf("T%d", i), nil
		},
		Kill:          func(int) error { return nil },
		Registrations: 6,
		Seed:          1,
	}
	if err := cs.Run(); err != nil {
		t.Fatal(err)
	}
	acked := cs.Acked()
	if want := []string{"T0", "T2", "T4"}; !reflect.DeepEqual(acked, want) {
		t.Fatalf("acked = %v, want %v", acked, want)
	}
	lost := cs.Verify(func(name string) error {
		if name == "T2" {
			return fmt.Errorf("gone")
		}
		return nil
	})
	if want := []string{"T2"}; !reflect.DeepEqual(lost, want) {
		t.Fatalf("lost = %v, want %v", lost, want)
	}
}

// A kill callback failure aborts the storm — an unkilled victim would
// invalidate the experiment.
func TestCrashStormKillErrorAborts(t *testing.T) {
	cs := &CrashStorm{
		Register:      func(i int) (string, error) { return fmt.Sprintf("T%d", i), nil },
		Kill:          func(int) error { return fmt.Errorf("refused") },
		Victims:       []int{1},
		Registrations: 5,
		Seed:          7,
	}
	if err := cs.Run(); err == nil {
		t.Fatal("expected kill error to abort the run")
	}
}
