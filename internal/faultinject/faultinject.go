// Package faultinject is a deterministic chaos harness for the transport
// layer. An Injector wraps an http.RoundTripper and, per destination
// (host:port), drops requests with a synthetic connection error, delays
// them, or black-holes them until the caller's timeout fires — so every
// robustness behavior (retries, circuit breakers, stale-cache
// degradation, takeover) is testable in-process without real network
// flakiness.
//
// Decisions are driven by a seeded RNG taken under the injector's lock,
// so a fixed seed and a fixed request sequence reproduce the same fault
// pattern run after run. Rules with Prob 0 (always fire) are fully
// deterministic regardless of request ordering.
//
// Install on a client with:
//
//	inj := faultinject.New(42)
//	client.WrapTransport(inj.Wrap)
//	inj.BlackHole("127.0.0.1:45123")
package faultinject

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"
)

// Mode is what happens to a matched request.
type Mode int

const (
	// Pass lets the request through untouched.
	Pass Mode = iota
	// Drop fails the request immediately, like a refused connection.
	Drop
	// Delay holds the request for Rule.Delay, then passes it through.
	Delay
	// BlackHole never answers; the request hangs until its context
	// (the caller's timeout) expires.
	BlackHole
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case BlackHole:
		return "blackhole"
	}
	return "pass"
}

// Rule describes the fault applied to one destination. The zero Rule
// passes everything.
type Rule struct {
	Mode Mode
	// Delay is how long Mode Delay holds a request.
	Delay time.Duration
	// Prob is the per-request probability the rule fires; 0 means always.
	Prob float64
	// Remaining, when > 0, disarms the rule after that many injections
	// (so "fail the first N requests" scenarios are expressible).
	Remaining int
}

// Stats counts one destination's outcomes.
type Stats struct {
	Passed     uint64
	Dropped    uint64
	Delayed    uint64
	BlackHoled uint64
}

// Error is the synthetic transport error returned for injected failures.
type Error struct {
	Dest string
	Mode Mode
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("faultinject: %s %s", e.Mode, e.Dest) }

// Wildcard matches any destination without its own rule.
const Wildcard = "*"

// Injector decides per request whether to inject a fault.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*Rule
	stats map[string]*Stats
	// partA/partB hold the two halves of an active network partition
	// (host:port sets); nil when the network is whole. Partition decisions
	// need the request's SOURCE as well as its destination, which is why
	// per-site clients wrap with WrapSource.
	partA map[string]bool
	partB map[string]bool
}

// New creates an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*Rule),
		stats: make(map[string]*Stats),
	}
}

// Set installs (or replaces) the rule for dest (host:port, or Wildcard).
func (in *Injector) Set(dest string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[dest] = &r
}

// Drop makes every request to dest fail immediately.
func (in *Injector) Drop(dest string) { in.Set(dest, Rule{Mode: Drop}) }

// BlackHole makes every request to dest hang until the caller's timeout.
func (in *Injector) BlackHole(dest string) { in.Set(dest, Rule{Mode: BlackHole}) }

// Delay holds every request to dest for d before passing it through.
func (in *Injector) Delay(dest string, d time.Duration) { in.Set(dest, Rule{Mode: Delay, Delay: d}) }

// Restore removes dest's rule; traffic flows normally again.
func (in *Injector) Restore(dest string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, dest)
}

// Clear removes every rule.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = make(map[string]*Rule)
}

// Partition splits the network into two halves: every request whose source
// is in one half and whose destination is in the other is dropped, in both
// directions, while traffic within a half flows normally. groupA and
// groupB are host:port sets; a source not in either half (e.g. an
// out-of-band admin client wrapped without a source) is unaffected.
// Partition replaces any previous partition; it composes with per-dest
// rules, which still apply to traffic the partition lets through.
func (in *Injector) Partition(groupA, groupB []string) {
	a := make(map[string]bool, len(groupA))
	for _, h := range groupA {
		a[h] = true
	}
	b := make(map[string]bool, len(groupB))
	for _, h := range groupB {
		b[h] = true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partA, in.partB = a, b
}

// Heal removes the active partition; cross-half traffic flows again.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partA, in.partB = nil, nil
}

// Partitioned reports whether a source→dest request would currently be
// severed by the active partition.
func (in *Injector) Partitioned(source, dest string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.severed(source, dest)
}

// severed is Partitioned without locking; callers hold in.mu.
func (in *Injector) severed(source, dest string) bool {
	if in.partA == nil || source == "" {
		return false
	}
	return (in.partA[source] && in.partB[dest]) || (in.partB[source] && in.partA[dest])
}

// Stats returns a snapshot of dest's outcome counters.
func (in *Injector) Stats(dest string) Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.stats[dest]; s != nil {
		return *s
	}
	return Stats{}
}

// decide resolves one request's fate, consuming an RNG draw only for
// probabilistic rules and counting down Remaining. source is the caller's
// own host:port ("" for clients wrapped without a source identity) and
// matters only to partitions.
func (in *Injector) decide(source, dest string) (Mode, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.stats[dest]
	if st == nil {
		st = &Stats{}
		in.stats[dest] = st
	}
	if in.severed(source, dest) {
		st.Dropped++
		return Drop, 0
	}
	key := dest
	r := in.rules[key]
	if r == nil {
		key = Wildcard
		r = in.rules[key]
	}
	if r == nil || r.Mode == Pass {
		st.Passed++
		return Pass, 0
	}
	if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
		st.Passed++
		return Pass, 0
	}
	if r.Remaining > 0 {
		r.Remaining--
		if r.Remaining == 0 {
			delete(in.rules, key)
		}
	}
	switch r.Mode {
	case Drop:
		st.Dropped++
	case Delay:
		st.Delayed++
	case BlackHole:
		st.BlackHoled++
	}
	return r.Mode, r.Delay
}

// Wrap layers the injector over an http.RoundTripper; pass the result to
// the transport client's WrapTransport. Requests wrapped this way have no
// source identity, so partitions never sever them (admin clients see the
// whole VO); use WrapSource for clients that live on a site.
func (in *Injector) Wrap(base http.RoundTripper) http.RoundTripper {
	return in.wrap("", base)
}

// WrapSource returns a WrapTransport-compatible wrapper whose requests
// carry the given source host:port, so symmetric Partition rules can
// decide based on which side of the split the CALLER is on, not only the
// destination.
func (in *Injector) WrapSource(source string) func(http.RoundTripper) http.RoundTripper {
	return func(base http.RoundTripper) http.RoundTripper {
		return in.wrap(source, base)
	}
}

func (in *Injector) wrap(source string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, source: source, base: base}
}

type roundTripper struct {
	in     *Injector
	source string
	base   http.RoundTripper
}

// RoundTrip applies the destination's rule before (or instead of) the
// real exchange.
func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	dest := req.URL.Host
	mode, delay := rt.in.decide(rt.source, dest)
	switch mode {
	case Drop:
		return nil, &Error{Dest: dest, Mode: Drop}
	case BlackHole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Delay:
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return rt.base.RoundTrip(req)
}

// ChaosEnabled reports whether heavyweight randomized chaos tests should
// run (GLARE_CHAOS=1 in the environment, as set by the CI chaos job).
// Cheap deterministic fault-injection tests run unconditionally.
func ChaosEnabled() bool { return os.Getenv("GLARE_CHAOS") != "" }
