// Package faultinject is a deterministic chaos harness for the transport
// layer. An Injector wraps an http.RoundTripper and, per destination
// (host:port), drops requests with a synthetic connection error, delays
// them, or black-holes them until the caller's timeout fires — so every
// robustness behavior (retries, circuit breakers, stale-cache
// degradation, takeover) is testable in-process without real network
// flakiness.
//
// Decisions are driven by a seeded RNG taken under the injector's lock,
// so a fixed seed and a fixed request sequence reproduce the same fault
// pattern run after run. Rules with Prob 0 (always fire) are fully
// deterministic regardless of request ordering.
//
// Install on a client with:
//
//	inj := faultinject.New(42)
//	client.WrapTransport(inj.Wrap)
//	inj.BlackHole("127.0.0.1:45123")
package faultinject

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"
)

// Mode is what happens to a matched request.
type Mode int

const (
	// Pass lets the request through untouched.
	Pass Mode = iota
	// Drop fails the request immediately, like a refused connection.
	Drop
	// Delay holds the request for Rule.Delay, then passes it through.
	Delay
	// BlackHole never answers; the request hangs until its context
	// (the caller's timeout) expires.
	BlackHole
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case BlackHole:
		return "blackhole"
	}
	return "pass"
}

// Rule describes the fault applied to one destination. The zero Rule
// passes everything.
type Rule struct {
	Mode Mode
	// Delay is how long Mode Delay holds a request.
	Delay time.Duration
	// Prob is the per-request probability the rule fires; 0 means always.
	Prob float64
	// Remaining, when > 0, disarms the rule after that many injections
	// (so "fail the first N requests" scenarios are expressible).
	Remaining int
}

// Stats counts one destination's outcomes.
type Stats struct {
	Passed     uint64
	Dropped    uint64
	Delayed    uint64
	BlackHoled uint64
}

// Error is the synthetic transport error returned for injected failures.
type Error struct {
	Dest string
	Mode Mode
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("faultinject: %s %s", e.Mode, e.Dest) }

// Wildcard matches any destination without its own rule.
const Wildcard = "*"

// Injector decides per request whether to inject a fault.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*Rule
	stats map[string]*Stats
}

// New creates an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*Rule),
		stats: make(map[string]*Stats),
	}
}

// Set installs (or replaces) the rule for dest (host:port, or Wildcard).
func (in *Injector) Set(dest string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[dest] = &r
}

// Drop makes every request to dest fail immediately.
func (in *Injector) Drop(dest string) { in.Set(dest, Rule{Mode: Drop}) }

// BlackHole makes every request to dest hang until the caller's timeout.
func (in *Injector) BlackHole(dest string) { in.Set(dest, Rule{Mode: BlackHole}) }

// Delay holds every request to dest for d before passing it through.
func (in *Injector) Delay(dest string, d time.Duration) { in.Set(dest, Rule{Mode: Delay, Delay: d}) }

// Restore removes dest's rule; traffic flows normally again.
func (in *Injector) Restore(dest string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, dest)
}

// Clear removes every rule.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = make(map[string]*Rule)
}

// Stats returns a snapshot of dest's outcome counters.
func (in *Injector) Stats(dest string) Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.stats[dest]; s != nil {
		return *s
	}
	return Stats{}
}

// decide resolves one request's fate, consuming an RNG draw only for
// probabilistic rules and counting down Remaining.
func (in *Injector) decide(dest string) (Mode, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.stats[dest]
	if st == nil {
		st = &Stats{}
		in.stats[dest] = st
	}
	key := dest
	r := in.rules[key]
	if r == nil {
		key = Wildcard
		r = in.rules[key]
	}
	if r == nil || r.Mode == Pass {
		st.Passed++
		return Pass, 0
	}
	if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
		st.Passed++
		return Pass, 0
	}
	if r.Remaining > 0 {
		r.Remaining--
		if r.Remaining == 0 {
			delete(in.rules, key)
		}
	}
	switch r.Mode {
	case Drop:
		st.Dropped++
	case Delay:
		st.Delayed++
	case BlackHole:
		st.BlackHoled++
	}
	return r.Mode, r.Delay
}

// Wrap layers the injector over an http.RoundTripper; pass the result to
// the transport client's WrapTransport.
func (in *Injector) Wrap(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, base: base}
}

type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

// RoundTrip applies the destination's rule before (or instead of) the
// real exchange.
func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	dest := req.URL.Host
	mode, delay := rt.in.decide(dest)
	switch mode {
	case Drop:
		return nil, &Error{Dest: dest, Mode: Drop}
	case BlackHole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Delay:
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return rt.base.RoundTrip(req)
}

// ChaosEnabled reports whether heavyweight randomized chaos tests should
// run (GLARE_CHAOS=1 in the environment, as set by the CI chaos job).
// Cheap deterministic fault-injection tests run unconditionally.
func ChaosEnabled() bool { return os.Getenv("GLARE_CHAOS") != "" }
