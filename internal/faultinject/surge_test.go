package faultinject

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSurgeClosedLoop(t *testing.T) {
	var inflight, peak atomic.Int64
	s := NewSurge(4, func(ctx context.Context) error {
		n := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	s.Start(context.Background())
	time.Sleep(50 * time.Millisecond)
	st := s.Stop()
	if st.Issued == 0 {
		t.Fatal("surge issued nothing")
	}
	if st.Failed != 0 {
		t.Fatalf("unexpected failures: %d", st.Failed)
	}
	// Closed loop: concurrency never exceeds the client count.
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak inflight %d exceeds 4 clients", p)
	}
	if inflight.Load() != 0 {
		t.Fatal("Stop returned with operations still in flight")
	}
}

func TestSurgeCountsFailuresAndKeepsGoing(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Uint64
	s := NewSurge(2, func(ctx context.Context) error {
		if calls.Add(1)%2 == 0 {
			return boom
		}
		return nil
	})
	var observed atomic.Uint64
	s.OnResult(func(err error) {
		if err != nil {
			observed.Add(1)
		}
	})
	s.Start(context.Background())
	for i := 0; calls.Load() < 20; i++ {
		if i > 1000 {
			t.Fatal("surge stalled")
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stop()
	if st.Failed == 0 || st.Failed >= st.Issued {
		t.Fatalf("stats = %+v, want some but not all failed", st)
	}
	if observed.Load() != st.Failed {
		t.Fatalf("OnResult saw %d failures, stats say %d", observed.Load(), st.Failed)
	}
}

func TestSurgeParentContextStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSurge(2, func(ctx context.Context) error { return nil })
	s.Start(ctx)
	cancel()
	done := make(chan SurgeStats, 1)
	go func() { done <- s.Stop() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung after parent cancel")
	}
}

func TestSurgeRampStaggersStarts(t *testing.T) {
	var first sync.Map
	s := NewSurge(4, func(ctx context.Context) error {
		first.LoadOrStore(time.Now(), true)
		time.Sleep(time.Millisecond)
		return nil
	})
	s.SetRamp(200 * time.Millisecond)
	start := time.Now()
	s.Start(context.Background())
	time.Sleep(120 * time.Millisecond)
	st := s.Stop()
	if st.Issued == 0 {
		t.Fatal("ramped surge issued nothing")
	}
	// With a 200ms ramp over 4 clients, the last client starts at 150ms;
	// stopping at ~120ms must not have waited for it, and at least one
	// staggered client (50ms or 100ms offset) must have started late.
	late := false
	first.Range(func(k, _ any) bool {
		if k.(time.Time).Sub(start) > 40*time.Millisecond {
			late = true
		}
		return true
	})
	if !late {
		t.Fatal("ramp did not stagger any client start")
	}
}

func TestSurgeDoubleStartAndStop(t *testing.T) {
	s := NewSurge(1, func(ctx context.Context) error { return nil })
	s.Start(context.Background())
	s.Start(context.Background()) // no-op, must not double the fleet
	s.Stop()
	s.Stop() // idempotent
}
