// Crash-storm injection: where Surge breaks the arrival rate and the
// network faults break individual requests, CrashStorm breaks *machines*
// — it interleaves a registration workload with permanent site kills at
// deterministic, seed-chosen points, and remembers exactly which
// registrations the client was told succeeded. The invariant a
// replicated registry must uphold is then mechanical to check: every
// acknowledged registration must still resolve from the survivors, no
// matter which sites died or when.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
)

// CrashStorm drives a registration workload punctuated by permanent site
// losses. It is wired with callbacks, like Surge, so it needs no
// knowledge of the grid under test.
type CrashStorm struct {
	// Register issues the i-th registration and returns the registered
	// name. Only names returned with a nil error enter the acknowledged
	// log — exactly the set a client is entitled to find again.
	Register func(i int) (name string, err error)
	// Kill permanently destroys the given site (journal and all).
	Kill func(site int) error
	// Victims lists the site indices the storm may kill, in seed-shuffled
	// order; the storm kills the first Kills of them.
	Victims []int
	// Kills bounds how many victims actually die (default: all Victims).
	Kills int
	// Registrations is the total workload size (default 20).
	Registrations int
	// Seed makes the kill schedule reproducible run after run.
	Seed int64

	acked  []string
	killed []int
}

// Run executes the storm: Registrations sequential registrations with
// the kills spliced between them at seed-chosen points. Registration
// errors are tolerated — a write rejected for want of a quorum is the
// system *keeping* its promise, not breaking it — but kill errors abort,
// because an unkilled victim would invalidate the experiment.
func (cs *CrashStorm) Run() error {
	total := cs.Registrations
	if total <= 0 {
		total = 20
	}
	kills := cs.Kills
	if kills <= 0 || kills > len(cs.Victims) {
		kills = len(cs.Victims)
	}
	rng := rand.New(rand.NewSource(cs.Seed))
	victims := append([]int(nil), cs.Victims...)
	rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	victims = victims[:kills]

	// Choose when each kill lands: a registration index in (0, total),
	// so every kill has acknowledged writes before it and workload after.
	killAt := map[int][]int{}
	for _, v := range victims {
		at := 1 + rng.Intn(total-1)
		killAt[at] = append(killAt[at], v)
	}

	cs.acked = cs.acked[:0]
	cs.killed = cs.killed[:0]
	for i := 0; i < total; i++ {
		for _, v := range killAt[i] {
			if err := cs.Kill(v); err != nil {
				return fmt.Errorf("crashstorm: killing site %d: %w", v, err)
			}
			cs.killed = append(cs.killed, v)
		}
		name, err := cs.Register(i)
		if err == nil {
			cs.acked = append(cs.acked, name)
		}
	}
	return nil
}

// Acked returns every registration name the client was told succeeded.
func (cs *CrashStorm) Acked() []string { return append([]string(nil), cs.acked...) }

// Killed returns the sites destroyed, in kill order.
func (cs *CrashStorm) Killed() []int { return append([]int(nil), cs.killed...) }

// Verify replays the acknowledged log against the healed grid: resolve
// is called once per acknowledged name and must return nil if the
// registration is still discoverable. It returns the sorted names lost
// — empty is the zero-acknowledged-write-loss invariant holding.
func (cs *CrashStorm) Verify(resolve func(name string) error) (lost []string) {
	for _, name := range cs.acked {
		if err := resolve(name); err != nil {
			lost = append(lost, name)
		}
	}
	sort.Strings(lost)
	return lost
}
