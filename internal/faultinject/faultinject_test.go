package faultinject

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// okBase is a backend that always answers 200.
func okBase(hits *int) http.RoundTripper {
	return rtFunc(func(req *http.Request) (*http.Response, error) {
		if hits != nil {
			*hits++
		}
		return &http.Response{
			StatusCode: http.StatusOK,
			Body:       io.NopCloser(strings.NewReader("ok")),
			Request:    req,
		}, nil
	})
}

func get(t *testing.T, rt http.RoundTripper, url string, timeout time.Duration) (*http.Response, error) {
	t.Helper()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestDropIsImmediateAndTyped(t *testing.T) {
	in := New(1)
	hits := 0
	rt := in.Wrap(okBase(&hits))
	in.Drop("1.2.3.4:80")

	_, err := get(t, rt, "http://1.2.3.4:80/x", 0)
	ferr, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *Error, got %T: %v", err, err)
	}
	if ferr.Mode != Drop || ferr.Dest != "1.2.3.4:80" {
		t.Fatalf("error = %+v", ferr)
	}
	if hits != 0 {
		t.Fatalf("dropped request reached the backend %d times", hits)
	}
	if st := in.Stats("1.2.3.4:80"); st.Dropped != 1 || st.Passed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemainingDisarmsRule(t *testing.T) {
	in := New(1)
	hits := 0
	rt := in.Wrap(okBase(&hits))
	in.Set("a:1", Rule{Mode: Drop, Remaining: 2})

	for i := 0; i < 2; i++ {
		if _, err := get(t, rt, "http://a:1/x", 0); err == nil {
			t.Fatalf("request %d should have been dropped", i)
		}
	}
	if _, err := get(t, rt, "http://a:1/x", 0); err != nil {
		t.Fatalf("rule should be disarmed after 2 injections: %v", err)
	}
	st := in.Stats("a:1")
	if st.Dropped != 2 || st.Passed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if hits != 1 {
		t.Fatalf("backend hits = %d, want 1", hits)
	}
}

func TestRestoreAndClear(t *testing.T) {
	in := New(1)
	rt := in.Wrap(okBase(nil))
	in.Drop("a:1")
	in.Drop("b:2")

	in.Restore("a:1")
	if _, err := get(t, rt, "http://a:1/x", 0); err != nil {
		t.Fatalf("restored dest still faulted: %v", err)
	}
	if _, err := get(t, rt, "http://b:2/x", 0); err == nil {
		t.Fatal("untouched rule should survive Restore of another dest")
	}
	in.Clear()
	if _, err := get(t, rt, "http://b:2/x", 0); err != nil {
		t.Fatalf("Clear left a rule behind: %v", err)
	}
}

func TestWildcardMatchesEveryDest(t *testing.T) {
	in := New(1)
	rt := in.Wrap(okBase(nil))
	in.Set(Wildcard, Rule{Mode: Drop})

	if _, err := get(t, rt, "http://anything:9/x", 0); err == nil {
		t.Fatal("wildcard rule did not fire")
	}
	// A specific rule shadows the wildcard.
	in.Set("special:1", Rule{Mode: Pass})
	if _, err := get(t, rt, "http://special:1/x", 0); err != nil {
		t.Fatalf("specific Pass rule should shadow wildcard: %v", err)
	}
}

func TestBlackHoleHonorsContext(t *testing.T) {
	in := New(1)
	rt := in.Wrap(okBase(nil))
	in.BlackHole("a:1")

	start := time.Now()
	_, err := get(t, rt, "http://a:1/x", 30*time.Millisecond)
	if err == nil {
		t.Fatal("black-holed request returned a response")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("black hole ignored the context deadline (%v)", elapsed)
	}
	if st := in.Stats("a:1"); st.BlackHoled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDelayHoldsThenPasses(t *testing.T) {
	in := New(1)
	hits := 0
	rt := in.Wrap(okBase(&hits))
	in.Delay("a:1", 20*time.Millisecond)

	start := time.Now()
	if _, err := get(t, rt, "http://a:1/x", 0); err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay not applied (%v)", elapsed)
	}
	if hits != 1 {
		t.Fatalf("backend hits = %d, want 1", hits)
	}
}

// TestSeededDeterminism drives two injectors with the same probabilistic
// rule and seed through an identical request sequence: the fault patterns
// must match decision for decision.
func TestSeededDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed)
		in.Set("a:1", Rule{Mode: Drop, Prob: 0.5})
		rt := in.Wrap(okBase(nil))
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := get(t, rt, "http://a:1/x", 0)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(1234), pattern(1234)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	// Sanity: a 0.5 rule actually fires sometimes and passes sometimes.
	dropped := 0
	for _, d := range a {
		if d {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("Prob 0.5 produced degenerate pattern (%d/%d dropped)", dropped, len(a))
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Pass: "pass", Drop: "drop", Delay: "delay", BlackHole: "blackhole"} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestChaosEnabled(t *testing.T) {
	t.Setenv("GLARE_CHAOS", "")
	if ChaosEnabled() {
		t.Fatal("empty GLARE_CHAOS should disable chaos")
	}
	t.Setenv("GLARE_CHAOS", "1")
	if !ChaosEnabled() {
		t.Fatal("GLARE_CHAOS=1 should enable chaos")
	}
}
