package experiments

import (
	"fmt"

	"glare/internal/atr"
	"glare/internal/mds"
	"glare/internal/xmlutil"
)

// BenchTestbed exposes the Fig. 10/11 testbed to the benchmark harness:
// an ATR and an Index Service with identical registered resources on one
// container, queried over real loopback HTTP(S).
type BenchTestbed struct {
	tb *testbed
}

// NewBenchTestbed builds a testbed with the given resource count. No
// modeled container delay is applied: benchmarks measure the raw
// hash-vs-scan cost.
func NewBenchTestbed(resources int, secure bool) (*BenchTestbed, error) {
	tb, err := newTestbedDelay(resources, secure, mds.CollapseConfig{}, 0)
	if err != nil {
		return nil, err
	}
	return &BenchTestbed{tb: tb}, nil
}

// QueryOnce performs one named-resource query against the chosen service
// ("ATR" or "Index"); i selects the resource round-robin.
func (b *BenchTestbed) QueryOnce(service string, i int) error {
	name := b.tb.names[i%len(b.tb.names)]
	switch service {
	case "ATR":
		_, err := b.tb.client.Call(b.tb.server.ServiceURL(atr.ServiceName),
			"GetType", xmlutil.NewNode("Name", name))
		return err
	case "Index":
		q := fmt.Sprintf(`//ActivityTypeEntry[@name='%s']`, name)
		_, err := b.tb.client.Call(b.tb.server.ServiceURL(mds.ServiceName),
			"Query", xmlutil.NewNode("XPath", q))
		return err
	}
	return fmt.Errorf("unknown service %q", service)
}

// Close releases the testbed.
func (b *BenchTestbed) Close() { b.tb.close() }
