package experiments

import (
	"fmt"
	"io"
	"time"

	"glare/internal/mds"
)

// Fig11Config parameterizes the throughput-vs-resources comparison.
type Fig11Config struct {
	// Resources is the sweep of registered activity-type counts.
	Resources []int
	// Clients is the fixed concurrent client count. The paper observed the
	// index collapse with "more than 130 activity type resources ... and
	// number of concurrent clients exceeds 10", so the default is 12.
	Clients int
	// Duration is the measurement window per point.
	Duration time.Duration
	// Secure toggles transport-level security.
	Secure bool
}

// DefaultFig11 mirrors the paper's sweep shape; Quick shrinks it.
func DefaultFig11(scale Scale) Fig11Config {
	if scale == Quick {
		return Fig11Config{
			Resources: []int{20, 140},
			Clients:   24,
			Duration:  200 * time.Millisecond,
		}
	}
	return Fig11Config{
		Resources: []int{10, 30, 60, 100, 130, 170, 220, 300},
		Clients:   24,
		Duration:  400 * time.Millisecond,
	}
}

// RunFig11 measures both services' throughput as the number of registered
// activity types grows, with the index's observed overload collapse
// enabled: past ~130 resources under >10 concurrent clients the Index
// Service "stops responding" while the ATR keeps answering from its hash
// table.
func RunFig11(cfg Fig11Config) ([]ThroughputPoint, error) {
	var out []ThroughputPoint
	for _, resources := range cfg.Resources {
		tb, err := newTestbed(resources, cfg.Secure, mds.ObservedCollapse)
		if err != nil {
			return nil, err
		}
		for _, service := range []string{"ATR", "Index"} {
			rate, collapsed := tb.measure(service, cfg.Clients, cfg.Duration)
			if service == "ATR" {
				collapsed = false // the registry never wedges
			}
			out = append(out, ThroughputPoint{
				Service: service, Secure: cfg.Secure,
				Clients: cfg.Clients, Resources: resources,
				OpsPerSec: rate, Collapsed: collapsed,
			})
		}
		tb.close()
	}
	return out, nil
}

// PrintFig11 renders the series.
func PrintFig11(w io.Writer, pts []ThroughputPoint) {
	fmt.Fprintln(w, "\nFig. 11 — throughput (requests/sec) vs registered activity types")
	var rows [][]string
	for _, p := range pts {
		status := ""
		if p.Collapsed {
			status = "STOPPED RESPONDING"
		}
		rows = append(rows, []string{
			p.Service, fmt.Sprintf("%d", p.Resources),
			fmt.Sprintf("%d", p.Clients), fmt.Sprintf("%.0f", p.OpsPerSec), status,
		})
	}
	writeTable(w, []string{"Service", "Resources", "Clients", "Req/s", "Status"}, rows)
}
