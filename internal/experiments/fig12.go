package experiments

import (
	"fmt"
	"io"
	"time"

	"glare/internal/activity"
	"glare/internal/metrics"
	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/vo"
)

// Fig12Point is one configuration's mean response time.
type Fig12Point struct {
	Sites        int // entry-holding sites
	Cache        bool
	Entries      int
	Requests     int
	MeanResponse time.Duration
}

// Fig12Config parameterizes the response-time experiment.
type Fig12Config struct {
	// SiteCounts is the sweep of entry-holding site counts (paper: 1,3,7).
	SiteCounts []int
	// Entries is the total number of deployment entries, spread equally
	// over the sites.
	Entries int
	// Requests is the number of measured requests per configuration.
	Requests int
}

// DefaultFig12 mirrors the paper's configurations; Quick shrinks it.
func DefaultFig12(scale Scale) Fig12Config {
	if scale == Quick {
		return Fig12Config{SiteCounts: []int{1, 3}, Entries: 63, Requests: 8}
	}
	return Fig12Config{SiteCounts: []int{1, 3, 7}, Entries: 420, Requests: 40}
}

// RunFig12 measures the response time of a deployment-list request as in
// Fig. 12: "Response time per activity deployment request with cache on 1
// Grid site and without cache on 1, 3 and 7 Grid sites. Deployment entries
// are equally distributed on all involved sites." The client runs on a
// dedicated site holding no entries, so its cache (when enabled) is what
// answers repeat requests.
func RunFig12(cfg Fig12Config) ([]Fig12Point, error) {
	var out []Fig12Point
	run := func(sites int, cacheOn bool) (Fig12Point, error) {
		p := Fig12Point{Sites: sites, Cache: cacheOn, Entries: cfg.Entries, Requests: cfg.Requests}
		// Site 0 is the client's site; sites 1..k hold the entries. One
		// group holds everyone so resolution is direct peer fan-out. Real
		// clock: response time is a wall-clock quantity here.
		v, err := vo.Build(vo.Options{
			Sites:         sites + 1,
			GroupSize:     sites + 1,
			Clock:         simclock.Real,
			CacheDisabled: !cacheOn,
			CacheTTL:      time.Hour,
			// Model each holder site's per-entry container processing so
			// that spreading the entries over more (simulated) machines
			// shows real parallel speedup even on one core.
			ScanDelayPerEntry: 50 * time.Microsecond,
		})
		if err != nil {
			return p, err
		}
		defer v.Close()
		if err := v.ElectSuperPeers(); err != nil {
			return p, err
		}
		for i := 0; i < cfg.Entries; i++ {
			holder := v.Nodes[1+i%sites]
			d := &activity.Deployment{
				Name: fmt.Sprintf("dep-%04d", i),
				Type: "Fig12App",
				Kind: activity.KindExecutable,
				Site: holder.Info.Name,
				Path: fmt.Sprintf("/opt/fig12/bin/dep-%04d", i),
			}
			if _, err := holder.RDM.RegisterDeployment(d); err != nil {
				return p, err
			}
		}
		client := v.Nodes[0].RDM
		// Warm-up request (populates the cache when enabled; the paper's
		// cached series measures steady state).
		if ds, err := client.GetDeployments("Fig12App", rdm.MethodExpect, false); err != nil {
			return p, err
		} else if len(ds) != cfg.Entries {
			return p, fmt.Errorf("fig12: got %d deployments, want %d", len(ds), cfg.Entries)
		}
		var rec metrics.LatencyRecorder
		for r := 0; r < cfg.Requests; r++ {
			t0 := time.Now()
			if _, err := client.GetDeployments("Fig12App", rdm.MethodExpect, false); err != nil {
				return p, err
			}
			rec.Observe(time.Since(t0))
		}
		p.MeanResponse = rec.Mean()
		return p, nil
	}

	// Cached series on 1 site, uncached on every site count.
	pt, err := run(1, true)
	if err != nil {
		return nil, err
	}
	out = append(out, pt)
	for _, k := range cfg.SiteCounts {
		pt, err := run(k, false)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintFig12 renders the series.
func PrintFig12(w io.Writer, pts []Fig12Point) {
	fmt.Fprintln(w, "\nFig. 12 — response time per deployment request")
	var rows [][]string
	for _, p := range pts {
		cacheLabel := "off"
		if p.Cache {
			cacheLabel = "on"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Sites), cacheLabel,
			fmt.Sprintf("%d", p.Entries),
			fmt.Sprintf("%.2f", float64(p.MeanResponse.Microseconds())/1000.0),
		})
	}
	writeTable(w, []string{"Sites", "Cache", "Entries", "Mean ms/request"}, rows)
}
