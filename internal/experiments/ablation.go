package experiments

import (
	"fmt"
	"io"
	"time"

	"glare/internal/activity"
	"glare/internal/metrics"
	"glare/internal/rdm"
	"glare/internal/simclock"
	"glare/internal/superpeer"
	"glare/internal/vo"
	"glare/internal/xmlutil"
)

// AblationPoint is one design-choice comparison.
type AblationPoint struct {
	Name    string
	Variant string
	Value   float64 // mean latency in ms (lower is better)
}

// RunAblationOverlay compares remote deployment discovery through the
// super-peer overlay (local → group peers → super-peer forwarding) against
// a flat broadcast in which the client queries every site in the VO
// directly. The overlay is GLARE's scalability argument: the client needs
// no global knowledge, and with caching at peers and super-peers most
// queries never leave the group.
func RunAblationOverlay(sites, entries, requests int) ([]AblationPoint, error) {
	v, err := vo.Build(vo.Options{
		Sites:     sites,
		GroupSize: (sites + 1) / 2, // force at least two groups
		Clock:     simclock.Real,
		CacheTTL:  time.Hour,
	})
	if err != nil {
		return nil, err
	}
	defer v.Close()
	if err := v.ElectSuperPeers(); err != nil {
		return nil, err
	}
	// Spread entries over every site but the client's.
	for i := 0; i < entries; i++ {
		holder := v.Nodes[1+i%(sites-1)]
		d := &activity.Deployment{
			Name: fmt.Sprintf("abl-%04d", i), Type: "AblApp",
			Kind: activity.KindExecutable, Site: holder.Info.Name,
			Path: fmt.Sprintf("/opt/abl/bin/abl-%04d", i),
		}
		if _, err := holder.RDM.RegisterDeployment(d); err != nil {
			return nil, err
		}
	}
	client := v.Nodes[0].RDM

	var overlay metrics.LatencyRecorder
	// Warm-up resolves types and populates caches along the overlay path.
	if _, err := client.GetDeployments("AblApp", rdm.MethodExpect, false); err != nil {
		return nil, err
	}
	for r := 0; r < requests; r++ {
		t0 := time.Now()
		if _, err := client.GetDeployments("AblApp", rdm.MethodExpect, false); err != nil {
			return nil, err
		}
		overlay.Observe(time.Since(t0))
	}

	// Flat broadcast: the client must know and query every site directly.
	var flat metrics.LatencyRecorder
	for r := 0; r < requests; r++ {
		t0 := time.Now()
		total := 0
		for _, n := range v.Nodes[1:] {
			resp, err := v.Client.Call(n.Info.ServiceURL(rdm.ServiceName),
				"LocalDeployments", xmlutil.NewNode("Type", "AblApp"))
			if err != nil {
				return nil, err
			}
			total += len(resp.All("ActivityDeployment"))
		}
		if total != entries {
			return nil, fmt.Errorf("flat broadcast saw %d entries, want %d", total, entries)
		}
		flat.Observe(time.Since(t0))
	}
	return []AblationPoint{
		{Name: "overlay-vs-flat", Variant: "super-peer overlay (cached)",
			Value: float64(overlay.Mean().Microseconds()) / 1000},
		{Name: "overlay-vs-flat", Variant: "flat broadcast",
			Value: float64(flat.Mean().Microseconds()) / 1000},
	}, nil
}

// RunAblationCache compares repeated deployment lookups from a remote
// client site with the two-level cache enabled and disabled (the design
// choice behind Fig. 12's cached series).
func RunAblationCache(entries, requests int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, cacheOn := range []bool{true, false} {
		v, err := vo.Build(vo.Options{
			Sites: 2, GroupSize: 2,
			Clock:         simclock.Real,
			CacheDisabled: !cacheOn,
			CacheTTL:      time.Hour,
		})
		if err != nil {
			return nil, err
		}
		if err := v.ElectSuperPeers(); err != nil {
			v.Close()
			return nil, err
		}
		for i := 0; i < entries; i++ {
			d := &activity.Deployment{
				Name: fmt.Sprintf("c-%04d", i), Type: "CacheApp",
				Kind: activity.KindExecutable, Site: v.Nodes[1].Info.Name,
				Path: fmt.Sprintf("/opt/c/bin/c-%04d", i),
			}
			if _, err := v.Nodes[1].RDM.RegisterDeployment(d); err != nil {
				v.Close()
				return nil, err
			}
		}
		client := v.Nodes[0].RDM
		if _, err := client.GetDeployments("CacheApp", rdm.MethodExpect, false); err != nil {
			v.Close()
			return nil, err
		}
		var rec metrics.LatencyRecorder
		for r := 0; r < requests; r++ {
			t0 := time.Now()
			if _, err := client.GetDeployments("CacheApp", rdm.MethodExpect, false); err != nil {
				v.Close()
				return nil, err
			}
			rec.Observe(time.Since(t0))
		}
		v.Close()
		variant := "cache off"
		if cacheOn {
			variant = "cache on"
		}
		out = append(out, AblationPoint{
			Name: "two-level-cache", Variant: variant,
			Value: float64(rec.Mean().Microseconds()) / 1000,
		})
	}
	return out, nil
}

// ElectionStats summarizes a super-peer election run (self-management
// characterization rather than a paper figure).
type ElectionStats struct {
	Sites      int
	GroupSize  int
	SuperPeers int
	Elapsed    time.Duration
}

// RunElection measures election time and resulting structure for a VO.
func RunElection(sites, groupSize int) (ElectionStats, error) {
	st := ElectionStats{Sites: sites, GroupSize: groupSize}
	v, err := vo.Build(vo.Options{Sites: sites, GroupSize: groupSize, Clock: simclock.Real})
	if err != nil {
		return st, err
	}
	defer v.Close()
	t0 := time.Now()
	if err := v.ElectSuperPeers(); err != nil {
		return st, err
	}
	st.Elapsed = time.Since(t0)
	for _, n := range v.Nodes {
		if n.Agent.Role() == superpeer.RoleSuperPeer {
			st.SuperPeers++
		}
	}
	return st, nil
}

// PrintAblation renders ablation points.
func PrintAblation(w io.Writer, pts []AblationPoint) {
	fmt.Fprintln(w, "\nAblations — design-choice comparisons (mean ms/request)")
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.Name, p.Variant, fmt.Sprintf("%.2f", p.Value)})
	}
	writeTable(w, []string{"Ablation", "Variant", "Mean ms"}, rows)
}
