package experiments

import (
	"fmt"
	"io"
	"time"

	"glare/internal/rdm"
	"glare/internal/vo"
	"glare/internal/workload"
)

// Table1Row is one (application, method) cell column of the paper's
// Table 1: "Time spent (in ms) in different operations."
type Table1Row struct {
	Method        string
	App           string
	TypeAddition  time.Duration
	Communication time.Duration
	Installation  time.Duration
	Registration  time.Duration
	Notification  time.Duration
	MethodOvhd    time.Duration
	Total         time.Duration
}

// RunTable1 deploys Wien2k, Invmod and Counter on a fresh site with both
// deployment methods, under the virtual clock, and reports the per-phase
// breakdown.
func RunTable1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, method := range []rdm.Method{rdm.MethodExpect, rdm.MethodCoG} {
		for _, ty := range workload.EvaluationTypes() {
			// A fresh single-site VO per cell: every deployment starts
			// from a clean machine, as in the paper.
			v, err := vo.Build(vo.Options{Sites: 1})
			if err != nil {
				return nil, err
			}
			// The imaging stack provides the Java/Ant toolchain types the
			// Counter service depends on — and, as on the paper's testbed,
			// the toolchain itself is already installed on the site before
			// the measured deployment begins.
			if err := v.RegisterImagingStack(0); err != nil {
				v.Close()
				return nil, err
			}
			for _, tool := range []string{"Java", "Ant"} {
				toolType, ok := v.Nodes[0].RDM.LookupType(tool)
				if !ok {
					v.Close()
					return nil, fmt.Errorf("table1: toolchain type %s missing", tool)
				}
				if _, err := v.Nodes[0].RDM.DeployLocal(toolType, rdm.MethodExpect); err != nil {
					v.Close()
					return nil, fmt.Errorf("table1: pre-installing %s: %w", tool, err)
				}
			}
			rep, err := v.Nodes[0].RDM.DeployLocal(ty, method)
			v.Close()
			if err != nil {
				return nil, fmt.Errorf("table1: %s via %s: %w", ty.Name, method, err)
			}
			t := rep.Timings
			rows = append(rows, Table1Row{
				Method:        methodLabel(method),
				App:           ty.Name,
				TypeAddition:  t.TypeAddition,
				Communication: t.Communication,
				Installation:  t.Installation,
				Registration:  t.Registration,
				Notification:  t.Notification,
				MethodOvhd:    t.MethodOverhead,
				Total:         t.Total(),
			})
		}
	}
	return rows, nil
}

func methodLabel(m rdm.Method) string {
	if m == rdm.MethodCoG {
		return "Java CoG"
	}
	return "Expect"
}

// PrintTable1 renders the rows in the paper's layout (operations as rows,
// applications as columns, one block per method).
func PrintTable1(w io.Writer, rows []Table1Row) {
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Method+"/"+r.App] = r
	}
	apps := []string{"Wien2k", "Invmod", "Counter"}
	for _, method := range []string{"Expect", "Java CoG"} {
		fmt.Fprintf(w, "\nDeployment method: %s (ms)\n", method)
		var out [][]string
		line := func(label string, get func(Table1Row) time.Duration) {
			row := []string{label}
			for _, app := range apps {
				row = append(row, ms(get(byKey[method+"/"+app])))
			}
			out = append(out, row)
		}
		line("Activity Type Addition", func(r Table1Row) time.Duration { return r.TypeAddition })
		line("Communication Overhead", func(r Table1Row) time.Duration { return r.Communication })
		line("Activity Installation/Deployment", func(r Table1Row) time.Duration { return r.Installation })
		line("Activity Deployment Registration", func(r Table1Row) time.Duration { return r.Registration })
		line("Notification", func(r Table1Row) time.Duration { return r.Notification })
		line(method+" Overhead", func(r Table1Row) time.Duration { return r.MethodOvhd })
		line("Total overhead for meta-scheduler", func(r Table1Row) time.Duration { return r.Total })
		writeTable(w, append([]string{"Operation/Overhead"}, apps...), out)
	}
}
