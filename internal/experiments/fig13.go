package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"glare/internal/atr"
	"glare/internal/metrics"
	"glare/internal/transport"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

// Fig13Point is one load-average measurement.
type Fig13Point struct {
	Series string // "requesters" or "sinks@<rate>"
	Count  int    // concurrent requesters or subscribed sinks
	Load   float64
}

// Fig13Config parameterizes the load-average experiment. The paper runs in
// wall-clock minutes (1-min loadavg, notify rates of 1/5/10 s); this
// reproduction compresses time by TimeScale so one paper-second costs
// (1s / TimeScale) of real time, with the loadavg sampling window scaled
// identically — the dimensionless load value is unaffected.
type Fig13Config struct {
	// Counts is the sweep of requester/sink counts (paper: up to 210).
	Counts []int
	// NotifyRates are the paper-time notification periods.
	NotifyRates []time.Duration
	// TimeScale compresses paper time (100 → 1 paper-second per 10 ms).
	TimeScale int
	// Window is the paper-time load-average window (1 minute).
	Window time.Duration
	// RunFor is the paper-time duration of each measurement.
	RunFor time.Duration
	// DeliveryCost is the paper-time cost of delivering one notification
	// to one sink (SOAP call to the subscriber). The notifier is
	// thread-per-delivery (as in GT4), so by Little's law the registry's
	// load average approaches rate x sinks x DeliveryCost — which is
	// exactly the proportionality the paper reports. 75 ms reproduces the
	// paper's peak of ~16 at 210 sinks with a 1 s notify rate.
	DeliveryCost time.Duration
}

// DefaultFig13 mirrors the paper's sweep; Quick shrinks it.
func DefaultFig13(scale Scale) Fig13Config {
	if scale == Quick {
		return Fig13Config{
			Counts:       []int{30, 210},
			NotifyRates:  []time.Duration{1 * time.Second},
			TimeScale:    100,
			Window:       time.Minute,
			RunFor:       90 * time.Second,
			DeliveryCost: 50 * time.Millisecond,
		}
	}
	return Fig13Config{
		Counts:       []int{10, 50, 90, 130, 170, 210},
		NotifyRates:  []time.Duration{1 * time.Second, 5 * time.Second, 10 * time.Second},
		TimeScale:    100,
		Window:       time.Minute,
		RunFor:       120 * time.Second,
		DeliveryCost: 50 * time.Millisecond,
	}
}

func (c Fig13Config) real(d time.Duration) time.Duration {
	return d / time.Duration(c.TimeScale)
}

// RunFig13Requesters measures the registry's 1-minute load average as the
// number of concurrent requesters grows. Each requester is a closed-loop
// client performing named lookups over the wire; the tracker's run queue
// covers the whole in-service window of each request.
func RunFig13Requesters(cfg Fig13Config) ([]Fig13Point, error) {
	var out []Fig13Point
	for _, n := range cfg.Counts {
		load, err := measureRequesterLoad(cfg, n)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig13Point{Series: "requesters", Count: n, Load: load})
	}
	return out, nil
}

func measureRequesterLoad(cfg Fig13Config, requesters int) (float64, error) {
	reg := atr.New("", nil, nil)
	var names []string
	for _, ty := range workload.SyntheticTypes(50) {
		if _, err := reg.Register(ty); err != nil {
			return 0, err
		}
		names = append(names, ty.Name)
	}
	tracker := metrics.NewLoadTrackerWith(cfg.real(5*time.Second), cfg.real(cfg.Window))
	srv := transport.NewServer()
	// The measured service: a named type lookup with the run queue
	// bracketed, plus a small amount of paper-time work so that queueing
	// is visible at all (the paper's GT4 stack did far more per request).
	srv.Register(atr.ServiceName, "GetType", func(body *xmlutil.Node) (*xmlutil.Node, error) {
		tracker.Enter()
		defer tracker.Exit()
		time.Sleep(cfg.real(12 * time.Millisecond))
		doc, ok := reg.LookupDocument(body.Text)
		if !ok {
			return nil, fmt.Errorf("no such type")
		}
		return doc, nil
	})
	if err := srv.Start("127.0.0.1:0", nil); err != nil {
		return 0, err
	}
	defer srv.Close()
	client := transport.NewClient(nil)
	defer client.CloseIdle()

	stopSampler := make(chan struct{})
	tracker.Start(stopSampler)
	stopAt := time.Now().Add(cfg.real(cfg.RunFor))
	var wg sync.WaitGroup
	for c := 0; c < requesters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for time.Now().Before(stopAt) {
				name := names[i%len(names)]
				i++
				_, _ = client.Call(srv.ServiceURL(atr.ServiceName), "GetType",
					xmlutil.NewNode("Name", name))
			}
		}(c)
	}
	wg.Wait()
	close(stopSampler)
	return tracker.Load(), nil
}

// RunFig13Sinks measures the registry's load average as the number of
// subscribed notification sinks grows, for each notify rate. On every
// publication tick one delivery task per sink enters the run queue; a
// bounded worker pool performs the HTTP deliveries, so a faster rate or
// more sinks means a deeper queue — the paper's "load average is
// proportional to the notification rate".
func RunFig13Sinks(cfg Fig13Config) ([]Fig13Point, error) {
	var out []Fig13Point
	for _, rate := range cfg.NotifyRates {
		for _, n := range cfg.Counts {
			load, err := measureSinkLoad(cfg, n, rate)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig13Point{
				Series: fmt.Sprintf("sinks@%s", rate), Count: n, Load: load,
			})
		}
	}
	return out, nil
}

func measureSinkLoad(cfg Fig13Config, sinks int, paperRate time.Duration) (float64, error) {
	deliveryCost := cfg.DeliveryCost
	if deliveryCost <= 0 {
		deliveryCost = 50 * time.Millisecond
	}
	tracker := metrics.NewLoadTrackerWith(cfg.real(5*time.Second), cfg.real(cfg.Window))
	stopSampler := make(chan struct{})
	tracker.Start(stopSampler)
	defer close(stopSampler)

	// Thread-per-delivery notifier: every tick the notifier dispatches one
	// delivery per subscribed sink, spread across the tick interval (a
	// real notifier walks its subscriber list; an instantaneous burst
	// would alias with the load sampler). Each delivery occupies the run
	// queue for the delivery's duration, so by Little's law the steady
	// load approaches sinks x DeliveryCost / rate — the proportionality
	// the paper reports.
	var wg sync.WaitGroup
	tickReal := cfg.real(paperRate)
	gap := tickReal / time.Duration(sinks+1)
	tick := time.NewTicker(tickReal)
	defer tick.Stop()
	stopAt := time.Now().Add(cfg.real(cfg.RunFor))
	for time.Now().Before(stopAt) {
		<-tick.C
		for i := 0; i < sinks; i++ {
			wg.Add(1)
			go func(startDelay time.Duration) {
				defer wg.Done()
				if startDelay > 0 {
					time.Sleep(startDelay)
				}
				tracker.Enter()
				defer tracker.Exit()
				time.Sleep(cfg.real(deliveryCost))
			}(time.Duration(i) * gap)
		}
	}
	load := tracker.Load()
	wg.Wait()
	return load, nil
}

// PrintFig13 renders the series.
func PrintFig13(w io.Writer, pts []Fig13Point) {
	fmt.Fprintln(w, "\nFig. 13 — 1-minute load average vs concurrent clients and notification sinks")
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			p.Series, fmt.Sprintf("%d", p.Count), fmt.Sprintf("%.2f", p.Load),
		})
	}
	writeTable(w, []string{"Series", "Count", "Load avg"}, rows)
}
