package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"glare/internal/atr"
	"glare/internal/gsi"
	"glare/internal/mds"
	"glare/internal/transport"
	"glare/internal/workload"
	"glare/internal/xmlutil"
)

// ThroughputPoint is one measurement of Figs. 10/11.
type ThroughputPoint struct {
	Service   string // "ATR" or "Index"
	Secure    bool
	Clients   int
	Resources int
	OpsPerSec float64
	Collapsed bool // Fig. 11: index stopped responding
}

// Fig10Config parameterizes the concurrent-client throughput comparison.
type Fig10Config struct {
	// Clients is the sweep of concurrent client counts.
	Clients []int
	// Resources is the number of activity types registered in both
	// services.
	Resources int
	// Duration is the measurement window per point (real time).
	Duration time.Duration
	// Secure variants to run.
	Secure []bool
	// ContainerDelay is the modeled per-request container processing time
	// applied to both services (see the containerDelay discussion below).
	// The throughput sweeps default to 1 ms; security-penalty comparisons
	// use 0 so that the TLS cost — a CPU cost — is what saturates.
	ContainerDelay time.Duration
}

// DefaultFig10 mirrors the paper's sweep shape; Quick shrinks it.
func DefaultFig10(scale Scale) Fig10Config {
	if scale == Quick {
		return Fig10Config{
			Clients:        []int{1, 4, 16},
			Resources:      60,
			Duration:       150 * time.Millisecond,
			Secure:         []bool{false},
			ContainerDelay: containerDelay,
		}
	}
	return Fig10Config{
		Clients:        []int{1, 2, 5, 10, 20, 50, 100, 150, 210},
		Resources:      100,
		Duration:       400 * time.Millisecond,
		Secure:         []bool{false, true},
		ContainerDelay: containerDelay,
	}
}

// testbed hosts an ATR and an Index Service with the same registered
// resources on one container, matching the paper's setup ("both WS-MDS
// Index and activity type registry services running on the same Grid site
// with same number of registered activity types").
type testbed struct {
	server *transport.Server
	client *transport.Client
	reg    *atr.Registry
	index  *mds.Index
	names  []string
}

// containerDelay models the per-request processing time of the WSRF
// container both services run in (the real GT4 stack spent milliseconds of
// SOAP/DOM work per call). It is a blocking delay, so concurrent requests
// overlap in service — a thread-per-request container — independent of the
// simulator host's core count. Both services pay it equally; the measured
// difference between them remains the hash-lookup-vs-XPath-scan cost.
const containerDelay = time.Millisecond

func newTestbed(resources int, secure bool, collapse mds.CollapseConfig) (*testbed, error) {
	return newTestbedDelay(resources, secure, collapse, containerDelay)
}

func newTestbedDelay(resources int, secure bool, collapse mds.CollapseConfig, delay time.Duration) (*testbed, error) {
	tb := &testbed{server: transport.NewServer()}
	tb.reg = atr.New("", nil, nil)
	tb.index = mds.New("bench-index", mds.DefaultIndex, nil)
	if collapse != (mds.CollapseConfig{}) {
		tb.index.SetCollapse(collapse)
	}
	tb.index.SetServiceDelay(delay)
	tb.reg.Mount(tb.server)
	tb.index.Mount(tb.server)
	// Wrap the registry's named lookup with the same container cost.
	tb.server.Register(atr.ServiceName, "GetType", func(body *xmlutil.Node) (*xmlutil.Node, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		if body == nil {
			return nil, fmt.Errorf("GetType: missing name")
		}
		doc, ok := tb.reg.LookupDocument(body.Text)
		if !ok {
			return nil, fmt.Errorf("GetType: no such type %q", body.Text)
		}
		return doc, nil
	})
	if secure {
		ca, err := gsi.NewAuthority("bench-ca")
		if err != nil {
			return nil, err
		}
		conf, err := ca.ServerConfig("127.0.0.1")
		if err != nil {
			return nil, err
		}
		if err := tb.server.Start("127.0.0.1:0", conf); err != nil {
			return nil, err
		}
		tb.client = transport.NewClient(ca.ClientConfig())
	} else {
		if err := tb.server.Start("127.0.0.1:0", nil); err != nil {
			return nil, err
		}
		tb.client = transport.NewClient(nil)
	}
	for _, ty := range workload.SyntheticTypes(resources) {
		if _, err := tb.reg.Register(ty); err != nil {
			return nil, err
		}
		tb.index.Register(tb.reg.EPR(ty.Name), ty.ToXML())
		tb.names = append(tb.names, ty.Name)
	}
	return tb, nil
}

func (tb *testbed) close() {
	tb.server.Close()
	tb.client.CloseIdle()
}

// measure runs `clients` concurrent closed-loop callers for the duration
// and returns completed ops/sec plus whether any caller saw the index
// collapse.
func (tb *testbed) measure(service string, clients int, d time.Duration) (float64, bool) {
	var ops, failures atomic.Uint64
	stopAt := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for time.Now().Before(stopAt) {
				name := tb.names[i%len(tb.names)]
				i++
				var err error
				switch service {
				case "ATR":
					// The registry answers named lookups from its hash
					// table.
					_, err = tb.client.Call(tb.server.ServiceURL(atr.ServiceName),
						"GetType", xmlutil.NewNode("Name", name))
				case "Index":
					// The index only supports XPath over the aggregated
					// document.
					q := fmt.Sprintf(`//ActivityTypeEntry[@name='%s']`, name)
					_, err = tb.client.Call(tb.server.ServiceURL(mds.ServiceName),
						"Query", xmlutil.NewNode("XPath", q))
				}
				if err != nil {
					failures.Add(1)
					if tb.index.Wedged() {
						return
					}
					continue
				}
				ops.Add(1)
			}
		}(c)
	}
	wg.Wait()
	rate := float64(ops.Load()) / d.Seconds()
	return rate, tb.index.Wedged()
}

// RunFig10 produces the throughput-vs-concurrent-clients comparison of
// Fig. 10 for both services, with and without transport-level security.
func RunFig10(cfg Fig10Config) ([]ThroughputPoint, error) {
	var out []ThroughputPoint
	for _, secure := range cfg.Secure {
		tb, err := newTestbedDelay(cfg.Resources, secure, mds.CollapseConfig{}, cfg.ContainerDelay)
		if err != nil {
			return nil, err
		}
		for _, service := range []string{"ATR", "Index"} {
			for _, clients := range cfg.Clients {
				rate, _ := tb.measure(service, clients, cfg.Duration)
				out = append(out, ThroughputPoint{
					Service: service, Secure: secure,
					Clients: clients, Resources: cfg.Resources,
					OpsPerSec: rate,
				})
			}
		}
		tb.close()
	}
	return out, nil
}

// PrintFig10 renders the series.
func PrintFig10(w io.Writer, pts []ThroughputPoint) {
	fmt.Fprintln(w, "\nFig. 10 — throughput (requests/sec) vs concurrent clients")
	var rows [][]string
	for _, p := range pts {
		sec := "http"
		if p.Secure {
			sec = "https"
		}
		rows = append(rows, []string{
			p.Service, sec, fmt.Sprintf("%d", p.Clients), fmt.Sprintf("%.0f", p.OpsPerSec),
		})
	}
	writeTable(w, []string{"Service", "Transport", "Clients", "Req/s"}, rows)
}
