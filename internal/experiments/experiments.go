// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): Table 1 (deployment cost breakdown, Expect vs
// JavaCoG), Fig. 10 (registry vs index throughput under concurrent
// clients, with and without transport security), Fig. 11 (throughput vs
// number of registered resources, including the index's overload
// collapse), Fig. 12 (deployment-request response time vs site count and
// caching) and Fig. 13 (1-minute load average vs requesters and
// notification sinks).
//
// Each experiment is a pure function returning structured rows so that the
// benchmark harness, the experiments command and the tests share one
// implementation. Absolute numbers differ from the paper (its testbed was
// the Austrian Grid; ours is a simulator on loopback), but each experiment
// asserts the paper's qualitative shape.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Scale trades fidelity for runtime. Quick keeps every experiment within a
// couple of seconds for use inside go test benchmarks; Full mirrors the
// paper's sweep ranges.
type Scale int

const (
	Quick Scale = iota
	Full
)

// writeTable renders rows with aligned columns.
func writeTable(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}
