package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Table 1's qualitative shape: CoG totals exceed Expect totals for every
// application; overheads match the calibration; installation dominates.
func TestTable1Shape(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Method+"/"+r.App] = r
	}
	for _, app := range []string{"Wien2k", "Invmod", "Counter"} {
		exp := byKey["Expect/"+app]
		cog := byKey["Java CoG/"+app]
		if exp.Total == 0 || cog.Total == 0 {
			t.Fatalf("%s: missing rows", app)
		}
		if cog.Total <= exp.Total {
			t.Errorf("%s: CoG total %v must exceed Expect total %v", app, cog.Total, exp.Total)
		}
		if cog.MethodOvhd <= exp.MethodOvhd {
			t.Errorf("%s: CoG overhead %v vs Expect %v", app, cog.MethodOvhd, exp.MethodOvhd)
		}
		if cog.Communication <= exp.Communication {
			t.Errorf("%s: CoG communication %v vs Expect %v", app, cog.Communication, exp.Communication)
		}
		if cog.Installation <= exp.Installation {
			t.Errorf("%s: CoG installation %v vs Expect %v", app, cog.Installation, exp.Installation)
		}
		// Expect overhead is the calibrated 2,100 ms.
		if exp.MethodOvhd != 2100*time.Millisecond {
			t.Errorf("%s: expect overhead %v", app, exp.MethodOvhd)
		}
		// Installation dominates both methods, as in the paper.
		if exp.Installation < exp.Registration || cog.Installation < cog.Registration {
			t.Errorf("%s: installation should dominate registration", app)
		}
	}
	// Print path smoke test.
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Total overhead for meta-scheduler") {
		t.Fatal("print output incomplete")
	}
}

// Fig. 10's qualitative shape: the ATR outperforms the Index at equal
// client counts (hash lookup vs XPath scan).
func TestFig10Shape(t *testing.T) {
	cfg := DefaultFig10(Quick)
	pts, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atrRate := map[int]float64{}
	idxRate := map[int]float64{}
	for _, p := range pts {
		if p.Service == "ATR" {
			atrRate[p.Clients] = p.OpsPerSec
		} else {
			idxRate[p.Clients] = p.OpsPerSec
		}
	}
	// At the highest client count the registry must beat the index.
	maxClients := cfg.Clients[len(cfg.Clients)-1]
	if atrRate[maxClients] <= idxRate[maxClients] {
		t.Errorf("ATR (%f) must outperform Index (%f) at %d clients",
			atrRate[maxClients], idxRate[maxClients], maxClients)
	}
	var buf bytes.Buffer
	PrintFig10(&buf, pts)
	if !strings.Contains(buf.String(), "Req/s") {
		t.Fatal("print output incomplete")
	}
}

// Fig. 10's security effect: HTTPS throughput is lower than HTTP for the
// same service and client count.
func TestFig10SecurityPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("TLS sweep")
	}
	// CPU-bound configuration (no modeled container delay): the TLS cost
	// is CPU, so it must show up as a throughput drop here.
	cfg := Fig10Config{
		Clients:   []int{16},
		Resources: 40,
		Duration:  250 * time.Millisecond,
		Secure:    []bool{false, true},
	}
	pts, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, p := range pts {
		key := p.Service
		if p.Secure {
			key += "+tls"
		}
		rate[key] = p.OpsPerSec
	}
	if rate["ATR+tls"] >= rate["ATR"] {
		t.Errorf("TLS must cost throughput: %f vs %f", rate["ATR+tls"], rate["ATR"])
	}
}

// Fig. 11's qualitative shape: the index degrades with resource count and
// collapses past the observed thresholds; the ATR stays responsive.
func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11(Quick)
	pts, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var atrBig, idxSmall, idxBig *ThroughputPoint
	for i := range pts {
		p := &pts[i]
		switch {
		case p.Service == "ATR" && p.Resources == 140:
			atrBig = p
		case p.Service == "Index" && p.Resources == 20:
			idxSmall = p
		case p.Service == "Index" && p.Resources == 140:
			idxBig = p
		}
	}
	if atrBig == nil || idxSmall == nil || idxBig == nil {
		t.Fatal("points missing")
	}
	if atrBig.Collapsed || atrBig.OpsPerSec == 0 {
		t.Error("ATR must keep answering at scale")
	}
	if !idxBig.Collapsed {
		t.Error("index must stop responding past 130 resources with 12 clients")
	}
	if idxSmall.Collapsed {
		t.Error("index must work below the thresholds")
	}
	var buf bytes.Buffer
	PrintFig11(&buf, pts)
	if !strings.Contains(buf.String(), "STOPPED RESPONDING") {
		t.Fatal("collapse not reported")
	}
}

// Fig. 12's qualitative shape: enabling the cache beats every uncached
// configuration, and spreading entries over more sites improves the
// uncached response time.
func TestFig12Shape(t *testing.T) {
	cfg := Fig12Config{SiteCounts: []int{1, 3}, Entries: 240, Requests: 6}
	pts, err := RunFig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cached, solo, spread *Fig12Point
	for i := range pts {
		p := &pts[i]
		switch {
		case p.Cache:
			cached = p
		case p.Sites == 1:
			solo = p
		case p.Sites == 3:
			spread = p
		}
	}
	if cached == nil || solo == nil || spread == nil {
		t.Fatalf("points missing: %+v", pts)
	}
	if cached.MeanResponse >= solo.MeanResponse {
		t.Errorf("cache (%v) must beat uncached single site (%v)",
			cached.MeanResponse, solo.MeanResponse)
	}
	if spread.MeanResponse >= solo.MeanResponse {
		t.Errorf("3 sites (%v) must beat 1 site (%v)",
			spread.MeanResponse, solo.MeanResponse)
	}
	var buf bytes.Buffer
	PrintFig12(&buf, pts)
	if !strings.Contains(buf.String(), "Mean ms/request") {
		t.Fatal("print output incomplete")
	}
}

// Fig. 13's qualitative shapes: sink load grows with the number of sinks
// and the requester series stays moderate.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive load experiment")
	}
	cfg := DefaultFig13(Quick)
	sinks, err := RunFig13Sinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byCount := map[int]float64{}
	for _, p := range sinks {
		byCount[p.Count] = p.Load
	}
	if byCount[210] <= byCount[30] {
		t.Errorf("load must grow with sinks: 30→%.2f, 210→%.2f", byCount[30], byCount[210])
	}
	reqs, err := RunFig13Requesters(Fig13Config{
		Counts: []int{30}, TimeScale: cfg.TimeScale,
		Window: cfg.Window, RunFor: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Load < 0 {
		t.Fatal("negative load")
	}
	var buf bytes.Buffer
	PrintFig13(&buf, append(sinks, reqs...))
	if !strings.Contains(buf.String(), "Load avg") {
		t.Fatal("print output incomplete")
	}
}

func TestAblationCacheShape(t *testing.T) {
	pts, err := RunAblationCache(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, p := range pts {
		vals[p.Variant] = p.Value
	}
	if vals["cache on"] >= vals["cache off"] {
		t.Errorf("cache on (%.2f ms) must beat cache off (%.2f ms)",
			vals["cache on"], vals["cache off"])
	}
	var buf bytes.Buffer
	PrintAblation(&buf, pts)
	if !strings.Contains(buf.String(), "two-level-cache") {
		t.Fatal("print output incomplete")
	}
}

func TestAblationOverlayRuns(t *testing.T) {
	pts, err := RunAblationOverlay(5, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Value <= 0 {
			t.Fatalf("%s: non-positive latency", p.Variant)
		}
	}
}

func TestElectionStats(t *testing.T) {
	st, err := RunElection(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.SuperPeers != 3 { // ceil(7/3)
		t.Fatalf("super-peers = %d", st.SuperPeers)
	}
	if st.Elapsed <= 0 {
		t.Fatal("no election time measured")
	}
}
