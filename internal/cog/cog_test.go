package cog

import (
	"testing"
	"time"

	"glare/internal/deployfile"
	"glare/internal/simclock"
	"glare/internal/site"
)

func fixture() (*Runner, *site.Site, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	repo := site.StandardUniverse()
	st := site.New(site.Attributes{Name: "target", Platform: "Intel", OS: "Linux", Arch: "32bit"}, v, repo)
	return NewRunner(DefaultConfig(), v, repo), st, v
}

func povrayCommands(t *testing.T, st *site.Site) []deployfile.Command {
	t.Helper()
	a, _ := st.Repo.ByName("POVray")
	b := &deployfile.Build{Name: "POVray", BaseDir: "/tmp/pov"}
	b.Steps = []deployfile.Step{
		{Name: "Init", Task: "mkdir-p", Props: []deployfile.KV{{Name: "argument", Value: "/tmp/pov"}}},
		{Name: "Download", Depends: []string{"Init"}, Task: "globus-url-copy",
			Props: []deployfile.KV{
				{Name: "source", Value: a.URL},
				{Name: "destination", Value: "file:///tmp/pov/p.tgz"},
				{Name: "md5sum", Value: a.MD5()},
			}},
		{Name: "Expand", Depends: []string{"Download"}, Task: "tar xvfz", BaseDir: "/tmp/pov",
			Props: []deployfile.KV{{Name: "argument", Value: "/tmp/pov/p.tgz"}}},
		{Name: "Configure", Depends: []string{"Expand"}, Task: "./configure",
			BaseDir: "/tmp/pov/povray-3.6.1",
			Props:   []deployfile.KV{{Name: "argument", Value: "--prefix=/opt/pov"}}},
		{Name: "Build", Depends: []string{"Configure"}, Task: "make", BaseDir: "/tmp/pov/povray-3.6.1"},
		{Name: "Deploy", Depends: []string{"Build"}, Task: "make", BaseDir: "/tmp/pov/povray-3.6.1",
			Props: []deployfile.KV{{Name: "argument", Value: "install"}}},
	}
	cmds, err := b.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	return cmds
}

func TestRunInstallsViaGRAMJobs(t *testing.T) {
	r, st, v := fixture()
	t0 := v.Now()
	res, err := r.Run(st, povrayCommands(t, st))
	if err != nil {
		t.Fatal(err)
	}
	if !st.FS.Exists("/opt/pov/bin/povray") {
		t.Fatal("binary not installed")
	}
	if res.Overhead != 9800*time.Millisecond {
		t.Fatalf("overhead = %v", res.Overhead)
	}
	if res.Communication <= 0 || res.Installation <= 0 {
		t.Fatalf("phases = %+v", res)
	}
	total := v.Now().Sub(t0)
	if total < res.Overhead+res.Communication+res.Installation {
		t.Fatalf("total %v < sum of phases", total)
	}
}

func TestRunFailsOnBadTransfer(t *testing.T) {
	r, st, _ := fixture()
	cmds := []deployfile.Command{{
		Step:    &deployfile.Step{Name: "Download"},
		Cmdline: "globus-url-copy http://nowhere/x.tgz file:///tmp/x.tgz",
	}}
	if _, err := r.Run(st, cmds); err == nil {
		t.Fatal("bad transfer must fail")
	}
	// Missing destination is also an error.
	cmds[0].Cmdline = "globus-url-copy http://nowhere/x.tgz"
	if _, err := r.Run(st, cmds); err == nil {
		t.Fatal("missing destination must fail")
	}
}

func TestRunFailsOnBadStep(t *testing.T) {
	r, st, _ := fixture()
	cmds := []deployfile.Command{{
		Step:    &deployfile.Step{Name: "Broken"},
		Cmdline: "definitely-not-a-command",
	}}
	if _, err := r.Run(st, cmds); err == nil {
		t.Fatal("failing step must fail the run")
	}
}

func TestCoGSlowerThanDirectTransfers(t *testing.T) {
	// The CoG transfer cost model must be slower than the default direct
	// GridFTP model, producing Table 1's communication-overhead gap.
	cfg := DefaultConfig()
	size := int64(42 << 20)
	if cfg.TransferCost.Duration(size) <= defaultDirectDuration(size) {
		t.Fatal("CoG transfers must cost more than direct transfers")
	}
}

func defaultDirectDuration(size int64) time.Duration {
	return (defaultDirect{}).Duration(size)
}

type defaultDirect struct{}

func (defaultDirect) Duration(size int64) time.Duration {
	// Mirror gridftp.DefaultCost without importing it circularly.
	return 80*time.Millisecond + time.Duration(size/(10<<10))*time.Millisecond
}

func TestNameAndConfigDefaults(t *testing.T) {
	r := NewRunner(Config{}, nil, site.NewRepo())
	if r.Name() != "JavaCoG" {
		t.Fatalf("name = %q", r.Name())
	}
	if r.cfg.StartupOverhead == 0 {
		t.Fatal("zero config must default")
	}
}

func TestIsTransfer(t *testing.T) {
	if !isTransfer("globus-url-copy a b") || !isTransfer("/opt/globus/bin/globus-url-copy a b") {
		t.Fatal("transfer detection failed")
	}
	if isTransfer("make install") || isTransfer("") {
		t.Fatal("false positive")
	}
}
