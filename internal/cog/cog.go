// Package cog implements the Java-CoG-style deployment path of Table 1:
// every installation step is submitted as a GRAM batch job and every data
// movement goes through GridFTP, with the CoG kit's startup overhead paid
// up front.
//
// The paper deploys each application "in two ways; with JavaCoG (using
// GRAM and GridFTP) and with Expect by programmatically acquiring [the]
// local system shell". The CoG rows of Table 1 are uniformly slower: a
// fixed ~9.8 s kit overhead, higher communication cost (transfers proxied
// through the client), and per-step GRAM submission tax during the
// installation itself. This package reproduces those mechanics.
package cog

import (
	"fmt"
	"strings"
	"time"

	"glare/internal/deployfile"
	"glare/internal/gram"
	"glare/internal/gridftp"
	"glare/internal/simclock"
	"glare/internal/site"
)

// Config tunes the CoG deployment path.
type Config struct {
	// StartupOverhead is the fixed per-deployment cost of bringing up the
	// CoG kit (JVM start, GSI proxy, service stubs). Table 1 reports
	// ~9.8-9.9 s.
	StartupOverhead time.Duration
	// TransferCost models CoG-proxied GridFTP transfers, slower than the
	// direct third-party transfers the Expect path enjoys.
	TransferCost gridftp.CostModel
	// JobOverhead is the per-step GRAM submission cost.
	JobOverhead time.Duration
	// PollInterval quantizes step completion: the CoG kit learns that a
	// GRAM job finished only at its next status poll, so every step's
	// observed duration rounds up to a poll-interval multiple. This is
	// the main reason the paper's CoG installation rows are 1.3-2x the
	// Expect rows.
	PollInterval time.Duration
}

// DefaultConfig matches the Table 1 calibration.
func DefaultConfig() Config {
	return Config{
		StartupOverhead: 9800 * time.Millisecond,
		TransferCost:    gridftp.CostModel{LatencyPerTransfer: 350 * time.Millisecond, BytesPerMS: 3 << 10},
		JobOverhead:     gram.DefaultSubmitOverhead,
		PollInterval:    2500 * time.Millisecond,
	}
}

// Runner deploys builds onto a target site via GRAM + GridFTP.
type Runner struct {
	cfg   Config
	clock simclock.Clock
	repo  *site.Repo
}

// NewRunner creates a CoG deployment runner.
func NewRunner(cfg Config, clock simclock.Clock, repo *site.Repo) *Runner {
	if clock == nil {
		clock = simclock.Real
	}
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	return &Runner{cfg: cfg, clock: clock, repo: repo}
}

// Name identifies the deployment method in reports.
func (r *Runner) Name() string { return "JavaCoG" }

// Result summarizes one deployment run's phase timings (virtual time).
type Result struct {
	Communication time.Duration // transfers
	Installation  time.Duration // build/install job time
	Overhead      time.Duration // method startup cost
}

// Run executes resolved deploy-file commands on the target site. Transfers
// are proxied through the CoG transfer client; all other steps become GRAM
// jobs (batch: interactive prompts are answered by the generated
// deployment script).
func (r *Runner) Run(target *site.Site, cmds []deployfile.Command) (Result, error) {
	sr := r.Open(target)
	res := Result{Overhead: sr.Overhead}
	for _, c := range cmds {
		step, err := sr.RunStep(c)
		res.Communication += step.Communication
		res.Installation += step.Installation
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// StepRunner is an opened CoG kit against one target, executing resolved
// commands one step at a time so a checkpointing caller can interleave
// effect capture with execution. Open pays the kit startup once; each
// RunStep then costs only its own transfer/GRAM time.
type StepRunner struct {
	r      *Runner
	target *site.Site
	ftp    *gridftp.Client
	jobs   *gram.Manager
	// Overhead is the startup cost paid by Open (virtual time).
	Overhead time.Duration
}

// FTP exposes the kit's proxied transfer client, so a caller that
// intercepts transfer steps (the artifact grid) still pays CoG transfer
// costs and books the bytes against this kit's tallies.
func (sr *StepRunner) FTP() *gridftp.Client { return sr.ftp }

// Open brings up the CoG kit against the target site.
func (r *Runner) Open(target *site.Site) *StepRunner {
	sw := simclock.NewStopwatch(r.clock)
	r.clock.Sleep(r.cfg.StartupOverhead)
	jobs := gram.NewManager(target, r.clock)
	jobs.SubmitOverhead = r.cfg.JobOverhead
	return &StepRunner{
		r:        r,
		target:   target,
		ftp:      gridftp.NewClient(r.clock, r.repo, r.cfg.TransferCost),
		jobs:     jobs,
		Overhead: sw.Elapsed(),
	}
}

// RunStep executes one resolved command and returns its phase timings.
func (sr *StepRunner) RunStep(c deployfile.Command) (Result, error) {
	r := sr.r
	var res Result
	sw := simclock.NewStopwatch(r.clock)
	if isTransfer(c.Cmdline) {
		if err := r.transfer(sr.ftp, sr.target, c); err != nil {
			return res, fmt.Errorf("cog: step %s: %w", c.Step.Name, err)
		}
		res.Communication = sw.Elapsed()
		return res, nil
	}
	if c.BaseDir != "" {
		sr.target.FS.Mkdir(c.BaseDir)
	}
	out, code, err := sr.jobs.SubmitWait(c.Cmdline, c.BaseDir, c.Env)
	if err != nil || code != 0 {
		return res, fmt.Errorf("cog: step %s failed (%v): %v", c.Step.Name, err, out)
	}
	// The kit observes completion only at the next status poll.
	if r.cfg.PollInterval > 0 {
		elapsed := sw.Elapsed()
		if rem := elapsed % r.cfg.PollInterval; rem != 0 {
			r.clock.Sleep(r.cfg.PollInterval - rem)
		}
	}
	res.Installation = sw.Elapsed()
	return res, nil
}

func isTransfer(cmdline string) bool {
	f := strings.Fields(cmdline)
	return len(f) > 0 && (f[0] == "globus-url-copy" || strings.HasSuffix(f[0], "/globus-url-copy"))
}

func (r *Runner) transfer(ftp *gridftp.Client, target *site.Site, c deployfile.Command) error {
	f := strings.Fields(c.Cmdline)
	if len(f) < 3 {
		return fmt.Errorf("transfer needs source and destination: %q", c.Cmdline)
	}
	src, dst := f[1], f[2]
	dstPath := strings.TrimPrefix(dst, "file://")
	algo, sum := deployfile.ChecksumOfStep(c.Step)
	return ftp.FetchSum(src, target, dstPath, algo, sum)
}
