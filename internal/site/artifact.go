package site

import (
	"crypto/md5"
	"crypto/sha256"
	"fmt"
	"sync"
	"time"
)

// Dialog is one prompt/expected-answer pair of an interactive installer.
// The paper's POVray install "prompts for license acceptance, user type,
// and install path"; the activity provider scripts these as send/expect
// patterns in the deploy-file.
type Dialog struct {
	Prompt string // what the installer prints, e.g. "Accept license? [y/n]"
	Answer string // the accepted answer, e.g. "y"
}

// TreeEntry describes one file created when an artifact's archive is
// expanded or its install step runs.
type TreeEntry struct {
	RelPath    string
	Executable bool
	Size       int64
}

// Artifact is one piece of installable software in the simulated universe:
// a downloadable archive plus its build/installation profile.
type Artifact struct {
	Name      string
	Version   string
	URL       string // canonical download URL (served by GridFTP)
	SizeBytes int64  // archive size; drives transfer cost
	UnpackDir string // directory the archive expands into

	// SourceTree is materialized on tar extraction.
	SourceTree []TreeEntry
	// InstallTree is materialized into the deployment dir on install.
	InstallTree []TreeEntry

	// ConfigureDialog holds the interactive prompts of ./configure or the
	// installer; empty means non-interactive.
	ConfigureDialog []Dialog

	// Virtual-time costs of each phase.
	ConfigureCost time.Duration
	BuildCost     time.Duration
	InstallCost   time.Duration

	// Services lists web/Grid service deployments exposed after install
	// (relative names, e.g. "WS-JPOVray").
	Services []string
}

// MD5 returns the artifact archive's content fingerprint.
func (a *Artifact) MD5() string {
	sum := md5.Sum([]byte(a.Name + "@" + a.Version + "#" + a.URL))
	return fmt.Sprintf("%x", sum)
}

// SHA256 returns the archive's sha256 content fingerprint, for deploy-files
// that declare a sha256sum step property instead of md5sum.
func (a *Artifact) SHA256() string {
	sum := sha256.Sum256([]byte(a.Name + "@" + a.Version + "#" + a.URL))
	return fmt.Sprintf("%x", sum)
}

// Checksum returns the fingerprint for the named algorithm ("md5" or
// "sha256"; empty defaults to md5). Unknown algorithms return "".
func (a *Artifact) Checksum(algo string) string {
	switch algo {
	case "", "md5":
		return a.MD5()
	case "sha256":
		return a.SHA256()
	}
	return ""
}

// Binaries returns the relative paths of executables in the install tree.
func (a *Artifact) Binaries() []string {
	var out []string
	for _, t := range a.InstallTree {
		if t.Executable {
			out = append(out, t.RelPath)
		}
	}
	return out
}

// Repo is the software universe: the set of artifacts reachable by URL.
// One Repo is shared by all sites of a VO; GridFTP transfers consult it
// for sizes and fingerprints.
type Repo struct {
	mu    sync.RWMutex
	byURL map[string]*Artifact
	byNam map[string]*Artifact
}

// NewRepo creates an empty software universe.
func NewRepo() *Repo {
	return &Repo{byURL: make(map[string]*Artifact), byNam: make(map[string]*Artifact)}
}

// Add registers an artifact; later adds with the same URL replace.
func (r *Repo) Add(a *Artifact) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byURL[a.URL] = a
	r.byNam[a.Name] = a
}

// ByURL resolves an artifact by download URL.
func (r *Repo) ByURL(url string) (*Artifact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byURL[url]
	return a, ok
}

// ByName resolves an artifact by name.
func (r *Repo) ByName(name string) (*Artifact, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byNam[name]
	return a, ok
}

// Names lists registered artifact names.
func (r *Repo) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byNam))
	for n := range r.byNam {
		out = append(out, n)
	}
	return out
}

// StandardUniverse builds the artifact set used across examples and
// experiments: the Section-2 imaging stack (POVray/JPOVray with Java and
// Ant prerequisites) and the three evaluation applications (Wien2k,
// Invmod, Counter). Costs are calibrated so the Expect deployment path
// lands near Table 1's installation rows.
func StandardUniverse() *Repo {
	r := NewRepo()
	r.Add(&Artifact{
		Name: "Java", Version: "1.4.2", URL: "http://repo.glare/dist/jdk-1.4.2.tgz",
		SizeBytes: 42 << 20, UnpackDir: "jdk-1.4.2",
		SourceTree: []TreeEntry{{RelPath: "install.sh", Executable: true, Size: 4096}},
		InstallTree: []TreeEntry{
			{RelPath: "bin/java", Executable: true, Size: 51200},
			{RelPath: "bin/javac", Executable: true, Size: 40960},
			{RelPath: "lib/rt.jar", Size: 20 << 20},
		},
		ConfigureDialog: []Dialog{
			{Prompt: "Do you agree to the above license terms? [yes or no]", Answer: "yes"},
		},
		ConfigureCost: 400 * time.Millisecond,
		BuildCost:     0,
		InstallCost:   2500 * time.Millisecond,
	})
	r.Add(&Artifact{
		Name: "Ant", Version: "1.6.5", URL: "http://repo.glare/dist/apache-ant-1.6.5.tgz",
		SizeBytes: 8 << 20, UnpackDir: "apache-ant-1.6.5",
		SourceTree: []TreeEntry{{RelPath: "README", Size: 2048}},
		InstallTree: []TreeEntry{
			{RelPath: "bin/ant", Executable: true, Size: 8192},
			{RelPath: "lib/ant.jar", Size: 2 << 20},
		},
		ConfigureCost: 150 * time.Millisecond,
		InstallCost:   900 * time.Millisecond,
	})
	r.Add(&Artifact{
		Name: "POVray", Version: "3.6.1", URL: "http://www.povray.org/ftp/povlinux-3.6.tgz",
		SizeBytes: 12 << 20, UnpackDir: "povray-3.6.1",
		SourceTree: []TreeEntry{
			{RelPath: "configure", Executable: true, Size: 65536},
			{RelPath: "Makefile.in", Size: 16384},
			{RelPath: "source/povray.cpp", Size: 1 << 20},
		},
		InstallTree: []TreeEntry{
			{RelPath: "bin/povray", Executable: true, Size: 3 << 20},
		},
		ConfigureDialog: []Dialog{
			{Prompt: "Accept POV-Ray license (y/n)?", Answer: "y"},
			{Prompt: "User type [personal/institutional]:", Answer: "personal"},
			{Prompt: "Install path [$POVRAY_HOME]:", Answer: ""},
		},
		ConfigureCost: 800 * time.Millisecond,
		BuildCost:     4200 * time.Millisecond,
		InstallCost:   600 * time.Millisecond,
	})
	r.Add(&Artifact{
		Name: "JPOVray", Version: "1.0", URL: "http://repo.glare/dist/jpovray-1.0.tgz",
		SizeBytes: 3 << 20, UnpackDir: "jpovray-1.0",
		SourceTree: []TreeEntry{
			{RelPath: "build.xml", Size: 4096},
			{RelPath: "src/JPOVray.java", Size: 512000},
		},
		InstallTree: []TreeEntry{
			{RelPath: "bin/jpovray", Executable: true, Size: 8192},
			{RelPath: "lib/jpovray.jar", Size: 1 << 20},
		},
		BuildCost:   2600 * time.Millisecond,
		InstallCost: 400 * time.Millisecond,
		Services:    []string{"WS-JPOVray"},
	})
	r.Add(&Artifact{
		Name: "Wien2k", Version: "05.1", URL: "http://repo.glare/dist/wien2k-05.tgz",
		SizeBytes: 15 << 20, UnpackDir: "wien2k-05",
		SourceTree: []TreeEntry{{RelPath: "siteconfig", Executable: true, Size: 32768}},
		InstallTree: []TreeEntry{
			{RelPath: "bin/lapw0", Executable: true, Size: 4 << 20},
			{RelPath: "bin/lapw1", Executable: true, Size: 4 << 20},
			{RelPath: "bin/lapw2", Executable: true, Size: 4 << 20},
		},
		// Pre-compiled: install dominated by unpacking/config, not builds.
		ConfigureCost: 1200 * time.Millisecond,
		BuildCost:     0,
		InstallCost:   6800 * time.Millisecond,
	})
	r.Add(&Artifact{
		Name: "Invmod", Version: "2.1", URL: "http://repo.glare/dist/invmod-2.1.tgz",
		SizeBytes: 12 << 20, UnpackDir: "invmod-2.1",
		SourceTree: []TreeEntry{
			{RelPath: "configure", Executable: true, Size: 40960},
			{RelPath: "src/wasim.f90", Size: 2 << 20},
		},
		InstallTree: []TreeEntry{
			{RelPath: "bin/invmod", Executable: true, Size: 6 << 20},
		},
		ConfigureDialog: []Dialog{
			{Prompt: "Path to WaSiM-ETH installation:", Answer: "/opt/wasim"},
		},
		ConfigureCost: 1800 * time.Millisecond,
		BuildCost:     22000 * time.Millisecond,
		InstallCost:   3900 * time.Millisecond,
	})
	r.Add(&Artifact{
		Name: "Counter", Version: "4.0", URL: "http://repo.glare/dist/counter-gt4.tgz",
		SizeBytes: 11 << 20, UnpackDir: "counter-gt4",
		SourceTree: []TreeEntry{
			{RelPath: "build.xml", Size: 4096},
			{RelPath: "src/CounterService.java", Size: 128000},
		},
		InstallTree: []TreeEntry{
			{RelPath: "bin/counter-client", Executable: true, Size: 4096},
		},
		// A GT4 service: container deployment dominates.
		ConfigureCost: 2100 * time.Millisecond,
		BuildCost:     16000 * time.Millisecond,
		InstallCost:   11600 * time.Millisecond,
		Services:      []string{"CounterService"},
	})
	return r
}
