package site

import (
	"fmt"
	"sync"
	"time"
)

// Process is a running (possibly interactive) command on a site's shell.
// Output lines appear on Out; interactive installers block awaiting a line
// on In. The Expect engine drives processes through exactly this surface.
type Process struct {
	Cmdline string

	out  chan string
	in   chan string
	done chan struct{}

	mu       sync.Mutex
	exitCode int
	err      error
}

func newProcess(cmdline string) *Process {
	return &Process{
		Cmdline: cmdline,
		out:     make(chan string, 64),
		in:      make(chan string, 4),
		done:    make(chan struct{}),
	}
}

// Out exposes the process's output line stream. The channel closes when
// the process exits.
func (p *Process) Out() <-chan string { return p.out }

// Send writes one line to the process's stdin.
func (p *Process) Send(line string) {
	select {
	case p.in <- line:
	case <-p.done:
	}
}

// Wait blocks until the process exits and returns its exit code.
func (p *Process) Wait() int {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitCode
}

// Done returns a channel closed at process exit.
func (p *Process) Done() <-chan struct{} { return p.done }

// Err returns the failure that terminated the process, if any.
func (p *Process) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// DrainOutput collects all remaining output lines until exit.
func (p *Process) DrainOutput() []string {
	var lines []string
	for l := range p.out {
		lines = append(lines, l)
	}
	return lines
}

// emit writes an output line (non-blocking against a full buffer would lose
// data, so it blocks; readers must consume or the process stalls, exactly
// like a real pipe).
func (p *Process) emit(format string, args ...any) {
	select {
	case <-p.done:
	default:
		p.out <- fmt.Sprintf(format, args...)
	}
}

// prompt emits a prompt line and waits for an answer with a timeout.
func (p *Process) prompt(text string, timeout time.Duration) (string, error) {
	p.emit("%s", text)
	select {
	case ans := <-p.in:
		return ans, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("prompt %q: no input within %v", text, timeout)
	}
}

func (p *Process) finish(code int, err error) {
	p.mu.Lock()
	p.exitCode = code
	p.err = err
	p.mu.Unlock()
	close(p.out)
	close(p.done)
}
