package site

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"time"
)

// Shell is an interactive command interpreter bound to one site. It is the
// thing glogin/local-shell sessions provide in the paper: the deployment
// handler logs in and drives installations through it.
type Shell struct {
	site *Site
	cwd  string
	env  map[string]string

	// AutoAnswer makes interactive prompts answer themselves with the
	// installer's canned answers — the equivalent of the paper's
	// "create user-defined deployment script" batch path used by the
	// JavaCoG method, where no virtual terminal is attached.
	AutoAnswer bool

	// PromptTimeout bounds how long an interactive installer waits for
	// input before aborting. Real time, independent of the virtual clock.
	PromptTimeout time.Duration
}

// transferRate is the virtual-time cost model for local file operations.
const unpackBytesPerMS = 256 << 10 // 256 KiB of archive handled per virtual ms

// Setenv sets a shell environment variable.
func (sh *Shell) Setenv(key, value string) { sh.env[key] = value }

// Getenv reads a shell environment variable.
func (sh *Shell) Getenv(key string) string { return sh.env[key] }

// Cwd returns the current working directory.
func (sh *Shell) Cwd() string { return sh.cwd }

// Chdir changes directory; the directory must exist.
func (sh *Shell) Chdir(dir string) error {
	d := sh.abs(sh.expand(dir))
	if !sh.site.FS.IsDir(d) {
		return fmt.Errorf("cd: no such directory: %s", d)
	}
	sh.cwd = d
	return nil
}

// expand substitutes $VAR and ${VAR} references from the shell env.
func (sh *Shell) expand(s string) string {
	return expandWith(s, func(k string) string { return sh.env[k] })
}

func expandWith(s string, lookup func(string) string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '$' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		if i < len(s) && s[i] == '{' {
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				b.WriteByte('$')
				b.WriteByte('{')
				i++
				continue
			}
			b.WriteString(lookup(s[i+1 : i+end]))
			i += end + 1
			continue
		}
		j := i
		for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
			j++
		}
		if j == i {
			b.WriteByte('$')
			continue
		}
		b.WriteString(lookup(s[i:j]))
		i = j
	}
	return b.String()
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (sh *Shell) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return clean(p)
	}
	return clean(path.Join(sh.cwd, p))
}

// Spawn starts a command; interactive commands emit prompts on the
// process's output and await answers on its input.
func (sh *Shell) Spawn(cmdline string) *Process {
	p := newProcess(cmdline)
	go sh.interpret(p, cmdline)
	return p
}

// Run executes a command to completion with prompts auto-answered,
// returning its output lines and exit code. This is the batch path.
func (sh *Shell) Run(cmdline string) ([]string, int, error) {
	saved := sh.AutoAnswer
	sh.AutoAnswer = true
	p := sh.Spawn(cmdline)
	out := p.DrainOutput()
	code := p.Wait()
	sh.AutoAnswer = saved
	return out, code, p.Err()
}

func (sh *Shell) interpret(p *Process, cmdline string) {
	fields := strings.Fields(sh.expand(cmdline))
	if len(fields) == 0 {
		p.finish(0, nil)
		return
	}
	cmd, args := fields[0], fields[1:]
	var err error
	switch {
	case cmd == "mkdir-p" || (cmd == "mkdir" && len(args) > 0 && args[0] == "-p"):
		err = sh.cmdMkdir(p, args)
	case cmd == "globus-url-copy" || strings.HasSuffix(cmd, "/globus-url-copy"):
		err = sh.cmdCopy(p, args)
	case cmd == "tar":
		err = sh.cmdTar(p, args)
	case cmd == "./configure" || strings.HasSuffix(cmd, "/configure"):
		err = sh.cmdConfigure(p, cmd, args)
	case cmd == "sh" && len(args) > 0 && strings.Contains(args[0], "install"):
		err = sh.cmdInstallScript(p, args[0], args[1:])
	case strings.Contains(cmd, "install.sh"):
		err = sh.cmdInstallScript(p, cmd, args)
	case cmd == "make":
		err = sh.cmdMake(p, args)
	case cmd == "ant":
		err = sh.cmdAnt(p, args)
	case cmd == "echo":
		p.emit("%s", strings.Join(args, " "))
	case cmd == "true" || cmd == ":":
		// no-op
	case cmd == "rm" && len(args) >= 2 && args[0] == "-rf":
		for _, a := range args[1:] {
			sh.site.FS.Remove(sh.abs(a))
		}
	case cmd == "test" && len(args) == 2 && args[0] == "-e":
		if !sh.site.FS.Exists(sh.abs(args[1])) {
			err = fmt.Errorf("test: %s: not found", args[1])
		}
	case cmd == "ls":
		dir := sh.cwd
		if len(args) > 0 {
			dir = sh.abs(args[0])
		}
		for _, f := range sh.site.FS.List(dir) {
			p.emit("%s", path.Base(f.Path))
		}
	default:
		err = sh.cmdExec(p, cmd, args)
	}
	if err != nil {
		p.emit("error: %v", err)
		p.finish(1, err)
		return
	}
	p.finish(0, nil)
}

func (sh *Shell) cmdMkdir(p *Process, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("mkdir-p: missing directory")
	}
	for _, a := range args {
		if a == "-p" {
			continue
		}
		sh.site.FS.Mkdir(sh.abs(a))
	}
	return nil
}

// cmdCopy implements globus-url-copy <source> <destination>.
func (sh *Shell) cmdCopy(p *Process, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("globus-url-copy: need source and destination")
	}
	src, dst := args[0], args[1]
	dstPath := strings.TrimPrefix(dst, "file://")
	dstPath = sh.abs(dstPath)
	if strings.HasPrefix(src, "file://") {
		srcPath := sh.abs(strings.TrimPrefix(src, "file://"))
		e, err := sh.site.FS.MustStat(srcPath)
		if err != nil {
			return err
		}
		sh.site.FS.Write(dstPath, e.Kind, e.Size, e.MD5, e.Artifact)
		sh.site.Clock.Sleep(time.Duration(e.Size/unpackBytesPerMS) * time.Millisecond)
		return nil
	}
	if sh.site.Transfer == nil {
		return fmt.Errorf("globus-url-copy: no transfer service attached")
	}
	if err := sh.site.Transfer(src, dstPath); err != nil {
		return fmt.Errorf("globus-url-copy: %w", err)
	}
	p.emit("copied %s -> %s", src, dstPath)
	return nil
}

// cmdTar implements tar xvfz <archive>: expand the artifact source tree.
func (sh *Shell) cmdTar(p *Process, args []string) error {
	if len(args) < 2 || !strings.Contains(args[0], "x") {
		return fmt.Errorf("tar: only extraction (x...) supported")
	}
	arch := sh.abs(args[1])
	e, err := sh.site.FS.MustStat(arch)
	if err != nil {
		return err
	}
	if e.Artifact == "" {
		return fmt.Errorf("tar: %s: not a recognized archive", arch)
	}
	a, ok := sh.site.Repo.ByName(e.Artifact)
	if !ok {
		return fmt.Errorf("tar: unknown artifact %q", e.Artifact)
	}
	dest := path.Join(path.Dir(arch), a.UnpackDir)
	sh.site.FS.Mkdir(dest)
	for _, t := range a.SourceTree {
		kind := KindFile
		if t.Executable {
			kind = KindExecutable
		}
		sh.site.FS.Write(path.Join(dest, t.RelPath), kind, t.Size, "", a.Name)
	}
	sh.site.recordUnpack(dest, a)
	sh.site.Clock.Sleep(time.Duration(a.SizeBytes/int64(unpackBytesPerMS)) * time.Millisecond)
	p.emit("extracted %s into %s", path.Base(arch), dest)
	return nil
}

// runDialog plays an installer's interactive prompts.
func (sh *Shell) runDialog(p *Process, a *Artifact) error {
	timeout := sh.PromptTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for _, d := range a.ConfigureDialog {
		var ans string
		if sh.AutoAnswer {
			p.emit("%s", d.Prompt)
			ans = d.Answer
		} else {
			got, err := p.prompt(d.Prompt, timeout)
			if err != nil {
				return err
			}
			ans = got
		}
		if d.Answer != "" && ans != d.Answer {
			return fmt.Errorf("installer aborted: answer %q rejected for %q", ans, d.Prompt)
		}
	}
	return nil
}

// cmdConfigure implements ./configure [--prefix=DIR].
func (sh *Shell) cmdConfigure(p *Process, cmd string, args []string) error {
	dir := sh.cwd
	if strings.Contains(cmd, "/") && cmd != "./configure" {
		dir = path.Dir(sh.abs(cmd))
	}
	a, srcDir, ok := sh.site.artifactAt(dir)
	if !ok {
		return fmt.Errorf("configure: no sources in %s", dir)
	}
	prefix := sh.defaultPrefix(a)
	for _, arg := range args {
		if v, found := strings.CutPrefix(arg, "--prefix="); found {
			prefix = sh.abs(v)
		}
	}
	p.emit("configuring %s %s ...", a.Name, a.Version)
	if err := sh.runDialog(p, a); err != nil {
		return err
	}
	sh.site.Clock.Sleep(a.ConfigureCost)
	sh.site.setPrefix(srcDir, prefix)
	p.emit("configured %s with prefix %s", a.Name, prefix)
	return nil
}

// cmdInstallScript handles self-installing archives (e.g. the JDK).
func (sh *Shell) cmdInstallScript(p *Process, script string, args []string) error {
	dir := path.Dir(sh.abs(script))
	a, srcDir, ok := sh.site.artifactAt(dir)
	if !ok {
		return fmt.Errorf("%s: no artifact sources found", script)
	}
	prefix := sh.defaultPrefix(a)
	if len(args) > 0 {
		prefix = sh.abs(args[0])
	}
	if err := sh.runDialog(p, a); err != nil {
		return err
	}
	sh.site.Clock.Sleep(a.ConfigureCost)
	sh.site.setPrefix(srcDir, prefix)
	return sh.install(p, a, prefix)
}

// cmdMake implements make and make install.
func (sh *Shell) cmdMake(p *Process, args []string) error {
	a, srcDir, ok := sh.site.artifactAt(sh.cwd)
	if !ok {
		return fmt.Errorf("make: no sources in %s", sh.cwd)
	}
	target := ""
	if len(args) > 0 {
		target = args[0]
	}
	switch target {
	case "":
		if len(a.ConfigureDialog) > 0 && !sh.site.isConfigured(srcDir) {
			return fmt.Errorf("make: %s is not configured", a.Name)
		}
		sh.site.Clock.Sleep(a.BuildCost)
		p.emit("built %s", a.Name)
		return nil
	case "install":
		prefix, ok := sh.site.prefixOf(srcDir)
		if !ok {
			prefix = sh.defaultPrefix(a)
		}
		return sh.install(p, a, prefix)
	default:
		return fmt.Errorf("make: unknown target %q", target)
	}
}

// cmdAnt implements ant [task]: requires an Ant deployment on the site and
// a build.xml in the current sources; builds and installs in one pass.
func (sh *Shell) cmdAnt(p *Process, args []string) error {
	if !sh.hasBinary("ant") {
		return fmt.Errorf("ant: command not found")
	}
	if !sh.hasBinary("java") {
		return fmt.Errorf("ant: JAVA_HOME not set and no java on site")
	}
	a, srcDir, ok := sh.site.artifactAt(sh.cwd)
	if !ok {
		return fmt.Errorf("ant: no sources in %s", sh.cwd)
	}
	if !sh.site.FS.Exists(path.Join(srcDir, "build.xml")) {
		return fmt.Errorf("ant: no build.xml in %s", srcDir)
	}
	sh.site.Clock.Sleep(a.BuildCost)
	prefix, ok := sh.site.prefixOf(srcDir)
	if !ok {
		prefix = sh.defaultPrefix(a)
	}
	p.emit("ant: built %s", a.Name)
	return sh.install(p, a, prefix)
}

// cmdExec runs an installed executable (by absolute path or bare name
// resolved against installed bin directories). Running it advances the
// clock a token amount; real application workloads live in workload.
func (sh *Shell) cmdExec(p *Process, cmd string, args []string) error {
	target := sh.abs(cmd)
	e := sh.site.FS.Stat(target)
	if e == nil && !strings.Contains(cmd, "/") {
		if found := sh.lookupBinary(cmd); found != "" {
			e = sh.site.FS.Stat(found)
		}
	}
	if e == nil {
		return fmt.Errorf("%s: command not found", cmd)
	}
	if e.Kind != KindExecutable {
		return fmt.Errorf("%s: permission denied", cmd)
	}
	sh.site.Clock.Sleep(25 * time.Millisecond)
	p.emit("%s: ok (%d args)", path.Base(e.Path), len(args))
	return nil
}

// install materializes an artifact's install tree under prefix and records
// exposed services in the site container.
func (sh *Shell) install(p *Process, a *Artifact, prefix string) error {
	sh.site.Clock.Sleep(a.InstallCost)
	sh.site.FS.Mkdir(prefix)
	for _, t := range a.InstallTree {
		kind := KindFile
		if t.Executable {
			kind = KindExecutable
		}
		sh.site.FS.Write(path.Join(prefix, t.RelPath), kind, t.Size, "", a.Name)
	}
	for _, svc := range a.Services {
		sh.site.DeployService(svc, prefix)
	}
	p.emit("installed %s %s into %s", a.Name, a.Version, prefix)
	return nil
}

func (sh *Shell) defaultPrefix(a *Artifact) string {
	base := sh.env["DEPLOYMENT_DIR"]
	if base == "" {
		base = "/opt/glare/deployments"
	}
	return path.Join(base, strings.ToLower(a.Name))
}

// hasBinary reports whether some installed bin/<name> executable exists.
func (sh *Shell) hasBinary(name string) bool { return sh.lookupBinary(name) != "" }

// lookupBinary finds an installed executable by base name.
func (sh *Shell) lookupBinary(name string) string {
	matches := sh.site.FS.Executables("/")
	sort.Slice(matches, func(i, j int) bool { return matches[i].Path < matches[j].Path })
	for _, f := range matches {
		if path.Base(f.Path) == name {
			return f.Path
		}
	}
	return ""
}
