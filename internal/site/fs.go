package site

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// FileKind distinguishes virtual filesystem entries.
type FileKind int

const (
	KindDir FileKind = iota
	KindFile
	KindExecutable
)

// File is one entry in a site's virtual filesystem.
type File struct {
	Path     string
	Kind     FileKind
	Size     int64
	MD5      string // content fingerprint for transferred artifacts
	Artifact string // name of the software artifact this file came from, if any
}

// FS is a site-local virtual filesystem. Paths are slash-separated and
// absolute; intermediate directories are created implicitly by writes.
type FS struct {
	mu    sync.RWMutex
	files map[string]*File
}

// NewFS creates a filesystem containing only the root directory.
func NewFS() *FS {
	fs := &FS{files: make(map[string]*File)}
	fs.files["/"] = &File{Path: "/", Kind: KindDir}
	return fs
}

func clean(p string) string {
	p = path.Clean("/" + strings.TrimSpace(p))
	return p
}

// Mkdir creates a directory and all parents.
func (f *FS) Mkdir(p string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mkdirLocked(clean(p))
}

func (f *FS) mkdirLocked(p string) {
	for p != "/" {
		if e, ok := f.files[p]; ok && e.Kind == KindDir {
			break
		}
		f.files[p] = &File{Path: p, Kind: KindDir}
		p = path.Dir(p)
	}
}

// Write creates or replaces a file entry; parent directories are created.
func (f *FS) Write(p string, kind FileKind, size int64, md5, artifact string) *File {
	cp := clean(p)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mkdirLocked(path.Dir(cp))
	e := &File{Path: cp, Kind: kind, Size: size, MD5: md5, Artifact: artifact}
	f.files[cp] = e
	return e
}

// Stat returns the entry at p, or nil.
func (f *FS) Stat(p string) *File {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.files[clean(p)]
}

// Exists reports whether p exists.
func (f *FS) Exists(p string) bool { return f.Stat(p) != nil }

// IsDir reports whether p is a directory.
func (f *FS) IsDir(p string) bool {
	e := f.Stat(p)
	return e != nil && e.Kind == KindDir
}

// Remove deletes p and, for directories, everything below it. It reports
// the number of entries removed.
func (f *FS) Remove(p string) int {
	cp := clean(p)
	if cp == "/" {
		return 0
	}
	prefix := cp + "/"
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for k := range f.files {
		if k == cp || strings.HasPrefix(k, prefix) {
			delete(f.files, k)
			n++
		}
	}
	return n
}

// List returns the direct children of directory p in sorted order.
func (f *FS) List(p string) []*File {
	cp := clean(p)
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []*File
	for k, e := range f.files {
		if k == "/" || k == cp {
			continue
		}
		if path.Dir(k) == cp {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Executables returns every executable entry under dir (recursively), in
// sorted order. GLARE uses this to auto-discover deployments "by exploring
// [the] bin sub directory of the deployed activity home".
func (f *FS) Executables(dir string) []*File {
	cd := clean(dir)
	prefix := cd + "/"
	if cd == "/" {
		prefix = "/"
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []*File
	for k, e := range f.files {
		if e.Kind == KindExecutable && (k == cd || strings.HasPrefix(k, prefix)) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Entries returns a value copy of every filesystem entry keyed by path.
// The deployment engine diffs two such snapshots to learn which entries a
// build step produced.
func (f *FS) Entries() map[string]File {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]File, len(f.files))
	for k, e := range f.files {
		out[k] = *e
	}
	return out
}

// Len returns the number of filesystem entries (including directories).
func (f *FS) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.files)
}

// MustStat is Stat that errors when the entry is missing; convenience for
// command implementations.
func (f *FS) MustStat(p string) (*File, error) {
	if e := f.Stat(p); e != nil {
		return e, nil
	}
	return nil, fmt.Errorf("no such file or directory: %s", p)
}
