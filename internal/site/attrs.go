// Package site simulates a Grid site: its static attributes, a virtual
// filesystem, a software universe reachable by transfer, an interactive
// shell, and a machine room that runs jobs.
//
// The paper evaluates GLARE on the Austrian Grid (7–10 physical sites). No
// such testbed exists here, so sites are simulated: each site exposes the
// same surfaces the real middleware used — attributes for ranking, a
// filesystem for deployments, a shell for the Expect-driven deployment
// handler, and a job runner behind GRAM — while costs (transfer,
// compilation) advance a virtual clock per DESIGN.md's substitution table.
package site

import (
	"fmt"
	"hash/fnv"
)

// Attributes are the static site properties used for super-peer ranking
// ("processor speed, memory, uptime and site name") and for deployment
// constraints (platform/os/arch).
type Attributes struct {
	Name         string
	ProcessorMHz int
	MemoryMB     int
	UptimeHours  int
	Processors   int
	Platform     string // e.g. "Intel"
	OS           string // e.g. "Linux"
	Arch         string // e.g. "32bit"
}

// Rank computes the site's unique rank: the paper derives it as "a unique
// hashcode of all grid sites ... based on their static attributes", relying
// on a well-established hash so that every RDM service computes the same
// value independently. FNV-1a over the canonical attribute string plays
// that role here.
func (a Attributes) Rank() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%s|%s|%s",
		a.Name, a.ProcessorMHz, a.MemoryMB, a.UptimeHours, a.Processors,
		a.Platform, a.OS, a.Arch)
	return h.Sum64()
}

// Matches reports whether the site satisfies a platform/os/arch constraint
// triple; empty constraint fields match anything.
func (a Attributes) Matches(platform, os, arch string) bool {
	if platform != "" && platform != a.Platform {
		return false
	}
	if os != "" && os != a.OS {
		return false
	}
	if arch != "" && arch != a.Arch {
		return false
	}
	return true
}

// String renders a short identification.
func (a Attributes) String() string {
	return fmt.Sprintf("%s (%dx%dMHz, %dMB, %s/%s/%s)",
		a.Name, a.Processors, a.ProcessorMHz, a.MemoryMB, a.Platform, a.OS, a.Arch)
}
