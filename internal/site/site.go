package site

import (
	"fmt"
	"path"
	"sort"
	"sync"

	"glare/internal/simclock"
)

// TransferFunc moves a remote object (identified by URL) onto this site's
// filesystem. The VO wiring installs the GridFTP client here so shell
// commands like globus-url-copy work.
type TransferFunc func(srcURL, dstPath string) error

// Site is one simulated Grid site.
type Site struct {
	Attrs Attributes
	FS    *FS
	Clock simclock.Clock
	Repo  *Repo

	// Transfer is invoked by globus-url-copy; nil means transfers fail.
	Transfer TransferFunc

	mu         sync.Mutex
	unpacked   map[string]*Artifact // absolute source dir -> artifact
	prefixes   map[string]string    // source dir -> configured install prefix
	configured map[string]bool      // source dir -> configure completed
	services   map[string]string    // service name -> home dir ("container")
	notices    []Notice             // administrator mailbox
}

// Notice is one administrator notification (the paper's "notifies
// administrator of the target site by email").
type Notice struct {
	Subject string
	Body    string
}

// New creates a site with an empty filesystem and standard directories.
func New(attrs Attributes, clock simclock.Clock, repo *Repo) *Site {
	if clock == nil {
		clock = simclock.Real
	}
	s := &Site{
		Attrs:      attrs,
		FS:         NewFS(),
		Clock:      clock,
		Repo:       repo,
		unpacked:   make(map[string]*Artifact),
		prefixes:   make(map[string]string),
		configured: make(map[string]bool),
		services:   make(map[string]string),
	}
	for _, d := range []string{"/tmp", "/home/glare", "/opt/globus/bin", "/scratch"} {
		s.FS.Mkdir(d)
	}
	return s
}

// DefaultEnv returns the environment-variable defaults the RDM service
// substitutes into deploy-files (paper §3.4).
func (s *Site) DefaultEnv() map[string]string {
	return map[string]string{
		"DEPLOYMENT_DIR":     "/opt/glare/deployments",
		"USER_HOME":          "/home/glare",
		"GLOBUS_SCRATCH_DIR": "/scratch",
		"GLOBUS_LOCATION":    "/opt/globus",
	}
}

// recordUnpack notes that dir now holds artifact sources.
func (s *Site) recordUnpack(dir string, a *Artifact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unpacked[clean(dir)] = a
}

// artifactAt resolves which artifact's sources live in dir (walking up so
// `make` can run from a subdirectory).
func (s *Site) artifactAt(dir string) (*Artifact, string, bool) {
	d := clean(dir)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if a, ok := s.unpacked[d]; ok {
			return a, d, true
		}
		if d == "/" {
			return nil, "", false
		}
		d = path.Dir(d)
	}
}

// setPrefix records the install prefix chosen at configure time.
func (s *Site) setPrefix(srcDir, prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prefixes[clean(srcDir)] = clean(prefix)
	s.configured[clean(srcDir)] = true
}

func (s *Site) prefixOf(srcDir string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.prefixes[clean(srcDir)]
	return p, ok
}

func (s *Site) isConfigured(srcDir string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.configured[clean(srcDir)]
}

// DeployService records a hosted web/Grid service in the site container.
func (s *Site) DeployService(name, home string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.services[name] = home
}

// UndeployService removes a hosted service; reports whether it existed.
func (s *Site) UndeployService(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.services[name]; !ok {
		return false
	}
	delete(s.services, name)
	return true
}

// HasService reports whether the container hosts the named service.
func (s *Site) HasService(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.services[name]
	return ok
}

// ServiceCount reports how many service endpoints the site hosts; the
// telemetry history sampler records it as the glare_site_services gauge.
func (s *Site) ServiceCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.services)
}

// Services lists hosted service names in sorted order.
func (s *Site) Services() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.services))
	for n := range s.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SideState is a snapshot of the shell-visible bookkeeping a build step
// can mutate besides the filesystem: unpack records, configure prefixes
// and hosted services. The deployment engine diffs two snapshots to learn
// a step's effects, and re-applies them when replaying a checkpoint.
type SideState struct {
	Unpacked   map[string]string // source dir -> artifact name
	Prefixes   map[string]string // source dir -> install prefix
	Configured map[string]bool   // source dir -> configure completed
	Services   map[string]string // service name -> home dir
}

// SideStateSnapshot captures the current side-state.
func (s *Site) SideStateSnapshot() SideState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SideState{
		Unpacked:   make(map[string]string, len(s.unpacked)),
		Prefixes:   make(map[string]string, len(s.prefixes)),
		Configured: make(map[string]bool, len(s.configured)),
		Services:   make(map[string]string, len(s.services)),
	}
	for d, a := range s.unpacked {
		out.Unpacked[d] = a.Name
	}
	for d, p := range s.prefixes {
		out.Prefixes[d] = p
	}
	for d, c := range s.configured {
		out.Configured[d] = c
	}
	for n, h := range s.services {
		out.Services[n] = h
	}
	return out
}

// RestoreUnpack re-records an archive expansion from a checkpoint,
// resolving the artifact through the repo; reports whether it resolved.
func (s *Site) RestoreUnpack(dir, artifactName string) bool {
	a, ok := s.Repo.ByName(artifactName)
	if !ok {
		return false
	}
	s.recordUnpack(dir, a)
	return true
}

// RestorePrefix re-records a configure run's install prefix.
func (s *Site) RestorePrefix(srcDir, prefix string, configured bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prefixes[clean(srcDir)] = clean(prefix)
	if configured {
		s.configured[clean(srcDir)] = true
	}
}

// ForgetDir drops unpack/configure bookkeeping at or under dir — the
// rollback path after a failed build removes its working tree.
func (s *Site) ForgetDir(dir string) {
	d := clean(dir)
	under := func(p string) bool {
		return p == d || (len(p) > len(d) && p[:len(d)] == d && (d == "/" || p[len(d)] == '/'))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for p := range s.unpacked {
		if under(p) {
			delete(s.unpacked, p)
		}
	}
	for p := range s.prefixes {
		if under(p) {
			delete(s.prefixes, p)
		}
	}
	for p := range s.configured {
		if under(p) {
			delete(s.configured, p)
		}
	}
}

// NotifyAdmin appends a message to the administrator mailbox.
func (s *Site) NotifyAdmin(subject, body string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notices = append(s.notices, Notice{Subject: subject, Body: body})
}

// Notices returns a copy of the administrator mailbox.
func (s *Site) Notices() []Notice {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Notice(nil), s.notices...)
}

// NewShell opens a shell on this site.
func (s *Site) NewShell() *Shell {
	env := s.DefaultEnv()
	return &Shell{site: s, cwd: "/home/glare", env: env}
}

// String identifies the site.
func (s *Site) String() string { return fmt.Sprintf("site %s", s.Attrs.Name) }
