package site

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"glare/internal/simclock"
)

func testSite() (*Site, *simclock.Virtual) {
	v := simclock.NewVirtual(time.Time{})
	s := New(Attributes{
		Name: "altix1.uibk", ProcessorMHz: 1500, MemoryMB: 4096,
		UptimeHours: 1200, Processors: 16,
		Platform: "Intel", OS: "Linux", Arch: "32bit",
	}, v, StandardUniverse())
	return s, v
}

func TestRankDeterministicAndDistinct(t *testing.T) {
	a := Attributes{Name: "a", ProcessorMHz: 100}
	b := Attributes{Name: "b", ProcessorMHz: 100}
	if a.Rank() != a.Rank() {
		t.Fatal("rank must be deterministic")
	}
	if a.Rank() == b.Rank() {
		t.Fatal("different sites should rank differently")
	}
}

func TestRankQuickDistribution(t *testing.T) {
	// Property: distinct names yield distinct ranks (hash behaves).
	seen := map[uint64]string{}
	f := func(name string) bool {
		a := Attributes{Name: name}
		r := a.Rank()
		if prev, ok := seen[r]; ok {
			return prev == name
		}
		seen[r] = name
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMatches(t *testing.T) {
	a := Attributes{Platform: "Intel", OS: "Linux", Arch: "32bit"}
	cases := []struct {
		p, o, r string
		want    bool
	}{
		{"", "", "", true},
		{"Intel", "Linux", "32bit", true},
		{"AMD", "", "", false},
		{"", "Solaris", "", false},
		{"Intel", "Linux", "64bit", false},
	}
	for _, c := range cases {
		if got := a.Matches(c.p, c.o, c.r); got != c.want {
			t.Errorf("Matches(%q,%q,%q) = %v", c.p, c.o, c.r, got)
		}
	}
}

func TestFSBasics(t *testing.T) {
	fs := NewFS()
	fs.Mkdir("/a/b/c")
	if !fs.IsDir("/a") || !fs.IsDir("/a/b/c") {
		t.Fatal("mkdir -p failed")
	}
	fs.Write("/a/b/f.txt", KindFile, 100, "m", "")
	if e := fs.Stat("/a/b/f.txt"); e == nil || e.Size != 100 {
		t.Fatal("write/stat failed")
	}
	if _, err := fs.MustStat("/nope"); err == nil {
		t.Fatal("MustStat must fail on missing")
	}
	ls := fs.List("/a/b")
	if len(ls) != 2 { // c dir + f.txt
		t.Fatalf("list = %d entries", len(ls))
	}
	n := fs.Remove("/a")
	if n < 4 || fs.Exists("/a") {
		t.Fatalf("remove: %d removed, exists=%v", n, fs.Exists("/a"))
	}
	if fs.Remove("/") != 0 {
		t.Fatal("removing root must be refused")
	}
}

func TestFSExecutables(t *testing.T) {
	fs := NewFS()
	fs.Write("/opt/app/bin/tool", KindExecutable, 10, "", "App")
	fs.Write("/opt/app/bin/sub/tool2", KindExecutable, 10, "", "App")
	fs.Write("/opt/app/doc.txt", KindFile, 10, "", "App")
	ex := fs.Executables("/opt/app")
	if len(ex) != 2 {
		t.Fatalf("executables = %d", len(ex))
	}
	if len(fs.Executables("/elsewhere")) != 0 {
		t.Fatal("wrong subtree")
	}
}

func TestFSPathCleaning(t *testing.T) {
	fs := NewFS()
	fs.Write("a//b/../c.txt", KindFile, 1, "", "")
	if !fs.Exists("/a/c.txt") {
		t.Fatal("path not cleaned")
	}
}

func TestShellEnvExpansion(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	sh.Setenv("FOO", "bar")
	if got := sh.expand("x/$FOO/${FOO}y/$MISSING/z$"); got != "x/bar/bary//z$" {
		t.Fatalf("expand = %q", got)
	}
}

func TestShellMkdirAndLs(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	if _, code, err := sh.Run("mkdir-p /data/in /data/out"); code != 0 || err != nil {
		t.Fatalf("mkdir: %d %v", code, err)
	}
	out, code, _ := sh.Run("ls /data")
	if code != 0 || len(out) != 2 {
		t.Fatalf("ls: %v", out)
	}
}

func TestShellUnknownCommand(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	_, code, err := sh.Run("frobnicate --now")
	if code == 0 || err == nil {
		t.Fatal("unknown command must fail")
	}
	if !strings.Contains(err.Error(), "command not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestShellChdir(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	if err := sh.Chdir("/tmp"); err != nil {
		t.Fatal(err)
	}
	if sh.Cwd() != "/tmp" {
		t.Fatalf("cwd = %s", sh.Cwd())
	}
	if err := sh.Chdir("/no/such"); err == nil {
		t.Fatal("chdir to missing dir must fail")
	}
}

// fetchArtifact simulates a completed globus-url-copy of an artifact.
func fetchArtifact(s *Site, name, dst string) {
	a, ok := s.Repo.ByName(name)
	if !ok {
		panic("unknown artifact " + name)
	}
	s.FS.Write(dst, KindFile, a.SizeBytes, a.MD5(), a.Name)
}

func TestTarConfigureMakeInstallFlow(t *testing.T) {
	s, v := testSite()
	sh := s.NewShell()
	sh.AutoAnswer = true
	s.FS.Mkdir("/tmp/povray")
	fetchArtifact(s, "POVray", "/tmp/povray/povray.tgz")
	if err := sh.Chdir("/tmp/povray"); err != nil {
		t.Fatal(err)
	}
	if _, code, err := sh.Run("tar xvfz povray.tgz"); code != 0 {
		t.Fatalf("tar failed: %v", err)
	}
	if !s.FS.Exists("/tmp/povray/povray-3.6.1/configure") {
		t.Fatal("sources not expanded")
	}
	if err := sh.Chdir("povray-3.6.1"); err != nil {
		t.Fatal(err)
	}
	// make before configure must fail for dialog-bearing artifacts.
	if _, code, _ := sh.Run("make"); code == 0 {
		t.Fatal("make before configure must fail")
	}
	t0 := v.Now()
	if _, code, err := sh.Run("./configure --prefix=/opt/glare/deployments/povray"); code != 0 {
		t.Fatalf("configure: %v", err)
	}
	if _, code, err := sh.Run("make"); code != 0 {
		t.Fatalf("make: %v", err)
	}
	if _, code, err := sh.Run("make install"); code != 0 {
		t.Fatalf("make install: %v", err)
	}
	if !s.FS.Exists("/opt/glare/deployments/povray/bin/povray") {
		t.Fatal("binary not installed")
	}
	e := s.FS.Stat("/opt/glare/deployments/povray/bin/povray")
	if e.Kind != KindExecutable {
		t.Fatal("installed binary not executable")
	}
	// Virtual time advanced by at least configure+build+install costs.
	a, _ := s.Repo.ByName("POVray")
	minCost := a.ConfigureCost + a.BuildCost + a.InstallCost
	if got := v.Now().Sub(t0); got < minCost {
		t.Fatalf("virtual cost %v < %v", got, minCost)
	}
}

func TestInteractiveConfigureRejectsWrongAnswer(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	s.FS.Mkdir("/tmp/p")
	fetchArtifact(s, "POVray", "/tmp/p/p.tgz")
	sh.Chdir("/tmp/p")
	sh.Run("tar xvfz p.tgz")
	sh.Chdir("povray-3.6.1")
	p := sh.Spawn("./configure")
	// Answer the license prompt wrongly.
	go func() {
		for range p.Out() {
		}
	}()
	p.Send("n")
	p.Send("personal")
	p.Send("")
	if code := p.Wait(); code == 0 {
		t.Fatal("wrong license answer must abort installation")
	}
}

func TestAntRequiresToolchain(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	sh.AutoAnswer = true
	s.FS.Mkdir("/tmp/j")
	fetchArtifact(s, "JPOVray", "/tmp/j/j.tgz")
	sh.Chdir("/tmp/j")
	sh.Run("tar xvfz j.tgz")
	sh.Chdir("jpovray-1.0")
	if _, code, err := sh.Run("ant Deploy"); code == 0 {
		t.Fatalf("ant without toolchain must fail, got success (%v)", err)
	}
	// Install Ant and Java, then it must work.
	installToolchain(t, s)
	if _, code, err := sh.Run("ant Deploy"); code != 0 {
		t.Fatalf("ant with toolchain failed: %v", err)
	}
	if !s.FS.Exists("/opt/glare/deployments/jpovray/bin/jpovray") {
		t.Fatal("jpovray not installed")
	}
	if !s.HasService("WS-JPOVray") {
		t.Fatal("service deployment not registered in container")
	}
}

func installToolchain(t *testing.T, s *Site) {
	t.Helper()
	sh := s.NewShell()
	sh.AutoAnswer = true
	s.FS.Mkdir("/tmp/tc")
	fetchArtifact(s, "Java", "/tmp/tc/jdk.tgz")
	fetchArtifact(s, "Ant", "/tmp/tc/ant.tgz")
	sh.Chdir("/tmp/tc")
	if _, code, err := sh.Run("tar xvfz jdk.tgz"); code != 0 {
		t.Fatalf("tar jdk: %v", err)
	}
	if _, code, err := sh.Run("sh jdk-1.4.2/install.sh /opt/glare/deployments/java"); code != 0 {
		t.Fatalf("jdk install: %v", err)
	}
	if _, code, err := sh.Run("tar xvfz ant.tgz"); code != 0 {
		t.Fatalf("tar ant: %v", err)
	}
	sh.Chdir("apache-ant-1.6.5")
	if _, code, err := sh.Run("make install"); code != 0 {
		t.Fatalf("ant install: %v", err)
	}
}

func TestExecInstalledBinary(t *testing.T) {
	s, _ := testSite()
	installToolchain(t, s)
	sh := s.NewShell()
	out, code, err := sh.Run("java -version")
	if code != 0 || err != nil {
		t.Fatalf("exec java: %v", err)
	}
	if len(out) == 0 || !strings.Contains(out[0], "java") {
		t.Fatalf("out = %v", out)
	}
	// Running a plain file must fail.
	s.FS.Write("/tmp/data.txt", KindFile, 1, "", "")
	if _, code, _ := sh.Run("/tmp/data.txt"); code == 0 {
		t.Fatal("executing a data file must fail")
	}
}

func TestServicesContainer(t *testing.T) {
	s, _ := testSite()
	s.DeployService("WS-JPOVray", "/opt/x")
	if !s.HasService("WS-JPOVray") {
		t.Fatal("service missing")
	}
	if got := s.Services(); len(got) != 1 || got[0] != "WS-JPOVray" {
		t.Fatalf("services = %v", got)
	}
	if !s.UndeployService("WS-JPOVray") || s.UndeployService("WS-JPOVray") {
		t.Fatal("undeploy semantics wrong")
	}
}

func TestAdminNotices(t *testing.T) {
	s, _ := testSite()
	s.NotifyAdmin("install failed", "POVray on altix1")
	ns := s.Notices()
	if len(ns) != 1 || ns[0].Subject != "install failed" {
		t.Fatalf("notices = %v", ns)
	}
}

func TestGlobusURLCopyLocalFile(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	s.FS.Write("/tmp/src.dat", KindFile, 1024, "md", "")
	if _, code, err := sh.Run("globus-url-copy file:///tmp/src.dat file:///tmp/dst.dat"); code != 0 {
		t.Fatalf("local copy: %v", err)
	}
	if e := s.FS.Stat("/tmp/dst.dat"); e == nil || e.Size != 1024 {
		t.Fatal("copy did not materialize")
	}
}

func TestGlobusURLCopyRemoteWithoutTransferFails(t *testing.T) {
	s, _ := testSite()
	sh := s.NewShell()
	if _, code, _ := sh.Run("globus-url-copy http://x/y file:///tmp/y"); code == 0 {
		t.Fatal("remote copy without transfer service must fail")
	}
}

func TestDefaultEnv(t *testing.T) {
	s, _ := testSite()
	env := s.DefaultEnv()
	for _, k := range []string{"DEPLOYMENT_DIR", "USER_HOME", "GLOBUS_SCRATCH_DIR", "GLOBUS_LOCATION"} {
		if env[k] == "" {
			t.Errorf("default env %s missing", k)
		}
	}
}
