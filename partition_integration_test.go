package glare

import (
	"sort"
	"testing"
	"time"
)

// sidesOf splits a 6-site grid into the super-peer's half and the other
// half: the super-peer plus the two lowest-ranked remaining sites on side
// A, the three highest-ranked remaining sites on side B. Side B therefore
// holds a clear takeover candidate, and both halves keep a majority-capable
// quorum story: B's three sites are exactly the majority of the five
// survivors.
func sidesOf(g *Grid, sp int) (sideA, sideB []int) {
	rest := []int{}
	for i := 0; i < g.Sites(); i++ {
		if i != sp {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		return g.vo.Nodes[rest[i]].Info.Rank > g.vo.Nodes[rest[j]].Info.Rank
	})
	sideB = rest[:3]                       // highest-ranked survivors
	sideA = append([]int{sp}, rest[3:]...) // old super-peer + the rest
	return sideA, sideB
}

// TestPartitionHealConvergesToSingleReign is the partition-tolerance
// acceptance path: a 6-site grid is split into halves; the half without
// the super-peer elects its own (suspicion threshold, majority of the
// reachable survivors); each half keeps registering; after the heal the
// rival probes merge the reigns onto the highest (epoch, rank) winner,
// every site converges on one super-peer, and registrations made on both
// sides resolve from every site.
func TestPartitionHealConvergesToSingleReign(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:           6,
		GroupSize:       6, // one group: a clean two-reign split
		ChaosSeed:       42,
		CallTimeout:     300 * time.Millisecond,
		BreakerCooldown: 200 * time.Millisecond,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	sp := -1
	for i := 0; i < g.Sites(); i++ {
		if g.IsSuperPeer(i) {
			sp = i
		}
		if g.EpochOf(i) != 1 {
			t.Fatalf("site %d at epoch %d after the first election", i, g.EpochOf(i))
		}
	}
	if sp < 0 {
		t.Fatal("no super-peer elected")
	}
	sideA, sideB := sidesOf(g, sp)
	winner, detector := sideB[0], sideB[2]

	if err := g.PartitionSites(sideA, sideB); err != nil {
		t.Fatal(err)
	}

	// Side B loses its super-peer behind the partition. One missed probe
	// only raises suspicion; the threshold's worth initiates recovery, and
	// the highest-ranked reachable survivor takes over with the majority of
	// the five survivors (its own three-site half).
	agent := g.vo.Nodes[detector].Agent
	if initiated, err := agent.DetectAndRecover(); err != nil || initiated {
		t.Fatalf("single miss tripped recovery: %v %v", initiated, err)
	}
	if initiated, err := agent.DetectAndRecover(); err != nil || !initiated {
		t.Fatalf("recovery not initiated at suspicion threshold: %v %v", initiated, err)
	}
	waitUntil(t, 10*time.Second, func() bool {
		return g.IsSuperPeer(winner) && g.EpochOf(winner) == 2
	}, "side-B takeover")
	if !g.IsSuperPeer(sp) || g.EpochOf(sp) != 1 {
		t.Fatal("old reign should persist on its own side of the split")
	}
	// The takeover broadcast could not cross the partition; the failures
	// are counted, not swallowed. (The broadcast runs after the winner's
	// own view install, so give it a moment.)
	propagateFails := g.Telemetry(winner).Counter("glare_superpeer_view_propagate_failures_total")
	waitUntil(t, 5*time.Second, func() bool { return propagateFails.Value() > 0 },
		"cross-partition view propagation failures to be counted")

	// Both halves keep working: each registers its own application.
	registerDeployment(t, g, sideA[1], "left-dep", "LeftApp")
	registerDeployment(t, g, sideB[1], "right-dep", "RightApp")

	if err := g.HealPartition(); err != nil {
		t.Fatal(err)
	}

	// After the heal the rival probes (normally driven by StartMonitors)
	// detect the double reign and merge it; repeated probes also rebroadcast
	// the winning view past any still-cooling circuit breakers.
	waitUntil(t, 15*time.Second, func() bool {
		for i := 0; i < g.Sites(); i++ {
			g.vo.Nodes[i].Agent.CheckRivals()
		}
		supers := 0
		for i := 0; i < g.Sites(); i++ {
			if g.IsSuperPeer(i) {
				supers++
			}
		}
		if supers != 1 {
			return false
		}
		want := g.SuperPeerOf(winner)
		epoch := g.EpochOf(winner)
		if epoch < 3 {
			return false
		}
		for i := 0; i < g.Sites(); i++ {
			if g.SuperPeerOf(i) != want || g.EpochOf(i) != epoch {
				return false
			}
		}
		return true
	}, "post-heal convergence to a single reign")

	if !g.IsSuperPeer(winner) || g.IsSuperPeer(sp) {
		t.Fatalf("merged reign must keep the higher-epoch winner: winner=%v oldSP=%v",
			g.IsSuperPeer(winner), g.IsSuperPeer(sp))
	}
	abdications := uint64(0)
	for i := 0; i < g.Sites(); i++ {
		abdications += g.Telemetry(i).Counter("glare_superpeer_abdications_total").Value()
	}
	if abdications == 0 {
		t.Fatal("healing a split brain must record at least one abdication")
	}

	// Both sides' registrations resolve from every site once the breakers
	// finish cooling down.
	for i := 0; i < g.Sites(); i++ {
		c := g.Client(i)
		for _, typeName := range []string{"LeftApp", "RightApp"} {
			name := map[string]string{"LeftApp": "left-dep", "RightApp": "right-dep"}[typeName]
			waitUntil(t, 10*time.Second, func() bool {
				deps, err := c.DiscoverNoDeploy(typeName)
				return err == nil && depNames(deps)[name]
			}, "resolving "+typeName+" from site "+g.SiteName(i))
		}
	}

	// Anti-entropy on the winner pulls the entries it does not own into its
	// cache, so the merged overlay serves them without re-fanning out.
	if pulled := g.vo.Nodes[winner].RDM.SyncRegistries(); pulled == 0 {
		t.Fatal("registry sync pulled nothing after the heal")
	}
	if n := g.Telemetry(winner).Counter("glare_sync_entries_pulled_total").Value(); n == 0 {
		t.Fatal("glare_sync_entries_pulled_total did not move")
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
