package glare

import (
	"strings"
	"sync"
	"testing"
	"time"

	"glare/internal/simclock"
)

// TestCrashedBuildResumesAfterRestart is the deployment-resilience
// acceptance path: on a 3-site grid, site 1's daemon dies mid-way through
// the on-demand JPOVray installation (after Java and Ant, with the archive
// already downloaded and verified). The restarted site resumes the build at
// its first incomplete step — re-downloading nothing — and registers
// exactly the deployments an uninterrupted installation would have.
func TestCrashedBuildResumesAfterRestart(t *testing.T) {
	g := newGrid(t, GridOptions{
		Sites:   3,
		DataDir: t.TempDir(),
		// Caches off so post-restart resolution provably hits registries.
		DisableCache: true,
	})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	installer := g.Client(1)
	if err := installer.RegisterTypes(ImagingTypes()...); err != nil {
		t.Fatal(err)
	}

	// The daemon dies right before JPOVray's final step: its dependencies
	// (Java, Ant) are fully installed and registered, the JPOVray archive
	// is downloaded, verified and unpacked.
	g.CrashBuildStep(1, "JPOVray", "Deploy")
	if _, err := installer.Deploy("JPOVray", MethodExpect); err == nil {
		t.Fatal("crashed deployment reported success")
	}

	g.StopSite(1)
	if err := g.RestartSite(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	recovered := g.Client(1)

	// The journal advertises the interrupted build before anyone retries.
	st := recovered.DeployEngineStatus()
	if len(st.Resumable) != 1 || st.Resumable[0].Type != "JPOVray" || st.Resumable[0].Steps == 0 {
		t.Fatalf("resumable builds after restart = %+v", st.Resumable)
	}

	rep, err := recovered.Deploy("JPOVray", MethodExpect)
	if err != nil {
		t.Fatalf("resumed deployment failed: %v", err)
	}
	names := map[string]bool{}
	for _, d := range rep.Deployments {
		names[d.Name] = true
	}
	if !names["jpovray"] || !names["WS-JPOVray"] {
		t.Fatalf("resumed deployment registered %v, want jpovray + WS-JPOVray", names)
	}

	// Zero re-download: every transfer the build needed happened in the
	// first life and was replayed from checkpoints in the second.
	if transfers, _ := g.vo.Nodes[1].RDM.FTP.Stats(); transfers != 0 {
		t.Fatalf("resumed build transferred %d archive(s), want 0", transfers)
	}
	tel := recovered.Telemetry()
	if n := tel.Counter("glare_deploy_steps_skipped_total").Value(); n == 0 {
		t.Fatal("glare_deploy_steps_skipped_total = 0, want > 0")
	}
	if n := tel.Counter("glare_deploy_resumes_total").Value(); n != 1 {
		t.Fatalf("glare_deploy_resumes_total = %d, want 1", n)
	}

	// The registration is identical in kind to a fresh install and
	// resolves grid-wide.
	deps, err := g.Client(2).DiscoverNoDeploy("ImageConversion")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deps {
		if d.Name == "jpovray" && d.Site == g.SiteName(1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("resumed deployment not resolvable from site 2: %v", deps)
	}
	if st := recovered.DeployEngineStatus(); len(st.Resumable) != 0 {
		t.Fatalf("completed build still resumable: %+v", st.Resumable)
	}
}

// TestConcurrentDuplicateDeploysShareOneBuild proves grid-level dedup: two
// racing requests for the same type on the same site run one build and
// share its report.
func TestConcurrentDuplicateDeploysShareOneBuild(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	c := g.Client(1)
	if err := c.RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}

	// Stretch the build in real time so the duplicate overlaps it.
	g.DelayBuildStep(1, "Wien2k", "Expand", 150*time.Millisecond)
	t.Cleanup(func() { g.ClearBuildFaults(1) })

	var wg sync.WaitGroup
	reports := make([]*DeployReport, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				time.Sleep(30 * time.Millisecond)
			}
			reports[i], errs[i] = c.Deploy("Wien2k", MethodExpect)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil || reports[i] == nil || len(reports[i].Deployments) == 0 {
			t.Fatalf("request %d: report=%+v err=%v", i, reports[i], errs[i])
		}
	}
	if n := g.Telemetry(1).Counter("glare_deploy_dedup_hits_total").Value(); n != 1 {
		t.Fatalf("glare_deploy_dedup_hits_total = %d, want 1", n)
	}
	if transfers, _ := g.vo.Nodes[1].RDM.FTP.Stats(); transfers != 1 {
		t.Fatalf("duplicate deploys made %d transfers, want 1", transfers)
	}
}

// TestRepeatedBuildFailuresQuarantineType proves grid-level quarantine:
// three consecutive terminal build failures put the type in cool-down, new
// requests are refused up front, and the status surface shows it.
func TestRepeatedBuildFailuresQuarantineType(t *testing.T) {
	g := newGrid(t, GridOptions{Sites: 2})
	if err := g.Elect(); err != nil {
		t.Fatal(err)
	}
	c := g.Client(1)
	if err := c.RegisterTypes(EvaluationTypes()...); err != nil {
		t.Fatal(err)
	}

	g.FailBuildStep(1, "Invmod", "Expand", 100)
	for i := 0; i < 3; i++ {
		if _, err := c.Deploy("Invmod", MethodExpect); err == nil {
			t.Fatalf("attempt %d succeeded despite injected fault", i+1)
		}
	}
	_, err := c.Deploy("Invmod", MethodExpect)
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("deploy of failing type got %v, want quarantine refusal", err)
	}

	st := c.DeployEngineStatus()
	if len(st.Quarantined) != 1 || st.Quarantined[0].Type != "Invmod" || st.Quarantined[0].Failures != 3 {
		t.Fatalf("quarantine status = %+v", st.Quarantined)
	}

	// After the cool-down a probe is allowed; with the fault cleared it
	// succeeds and lifts the quarantine.
	g.ClearBuildFaults(1)
	g.vo.Clock.(*simclock.Virtual).Advance(2 * time.Hour)
	if _, err := c.Deploy("Invmod", MethodExpect); err != nil {
		t.Fatalf("probe after cool-down failed: %v", err)
	}
	if st := c.DeployEngineStatus(); len(st.Quarantined) != 0 {
		t.Fatalf("quarantine not lifted by success: %+v", st.Quarantined)
	}
}
