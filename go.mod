module glare

go 1.22
