// Artifact-grid benchmarks: the origin traffic a flash install costs on a
// cold grid (empty caches everywhere) versus a warm one (every site's CAS
// already holds the release) — the numbers CI publishes as
// BENCH_artifact.json so an origin-traffic regression shows up as a
// metric shift, not just a test flake.
package glare

import (
	"sync"
	"testing"

	"glare/internal/gridftp"
)

const benchFlashSites = 5

// benchFlashGrid builds one elected K-site peer group with the Table 1
// applications registered.
func benchFlashGrid(b *testing.B) *Grid {
	b.Helper()
	g, err := NewGrid(GridOptions{Sites: benchFlashSites, GroupSize: benchFlashSites})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Elect(); err != nil {
		g.Close()
		b.Fatal(err)
	}
	if err := g.Client(0).RegisterTypes(EvaluationTypes()...); err != nil {
		g.Close()
		b.Fatal(err)
	}
	return g
}

// benchFlashRound has every site deploy (then undeploy) the release
// concurrently and returns the origin transfers and bytes the round added.
func benchFlashRound(b *testing.B, g *Grid) (transfers int, bytes int64) {
	b.Helper()
	t0, b0 := benchOriginTotals(g)
	var wg sync.WaitGroup
	reports := make([]*DeployReport, benchFlashSites)
	errs := make([]error, benchFlashSites)
	for i := 0; i < benchFlashSites; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = g.Client(i).Deploy("Wien2k", MethodExpect)
		}(i)
	}
	wg.Wait()
	for i := 0; i < benchFlashSites; i++ {
		if errs[i] != nil {
			b.Fatal(errs[i])
		}
		for _, d := range reports[i].Deployments {
			if err := g.Client(i).Undeploy(d.Name); err != nil {
				b.Fatal(err)
			}
		}
	}
	t1, b1 := benchOriginTotals(g)
	return t1 - t0, b1 - b0
}

func benchOriginTotals(g *Grid) (transfers int, bytes int64) {
	for i := 0; i < g.Sites(); i++ {
		st := g.vo.Nodes[i].RDM.FTP.SourceStats()[gridftp.OriginSource]
		transfers += st.Transfers
		bytes += st.Bytes
	}
	return transfers, bytes
}

// BenchmarkArtifactFlashInstallCold measures the origin traffic of a flash
// install on a grid whose artifact caches are empty: every iteration
// builds a fresh grid, so the rendezvous home's pull-through is the only
// thing standing between K installing sites and K origin transfers.
func BenchmarkArtifactFlashInstallCold(b *testing.B) {
	var transfers int
	var bytes int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchFlashGrid(b)
		b.StartTimer()
		tr, by := benchFlashRound(b, g)
		transfers += tr
		bytes += by
		b.StopTimer()
		g.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(transfers)/float64(b.N), "origin_transfers/op")
	b.ReportMetric(float64(bytes)/float64(b.N), "origin_bytes/op")
}

// BenchmarkArtifactFlashInstallWarm measures the same round against a grid
// already primed by one flash install: every transfer step is a local CAS
// hit, so origin traffic should be zero — well under the 25%-of-cold
// acceptance bound.
func BenchmarkArtifactFlashInstallWarm(b *testing.B) {
	g := benchFlashGrid(b)
	defer g.Close()
	benchFlashRound(b, g) // prime every site's CAS
	var transfers int
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, by := benchFlashRound(b, g)
		transfers += tr
		bytes += by
	}
	b.ReportMetric(float64(transfers)/float64(b.N), "origin_transfers/op")
	b.ReportMetric(float64(bytes)/float64(b.N), "origin_bytes/op")
}
